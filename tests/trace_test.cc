// Golden-sequence and invariant tests for the obs/ tracing layer: the
// paper's figures replayed under traced schedulers, the JSONL schema
// contract, the counter identities, and the disabled-path guarantees.
#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "core/rsg.h"
#include "model/text.h"
#include "obs/export.h"
#include "obs/inspect.h"
#include "obs/trace.h"
#include "sched/admitter.h"
#include "sched/engine.h"
#include "sched/factory.h"
#include "sched/replay.h"
#include "util/json.h"

namespace relser {
namespace {

// Counting operator new: proves the untraced / kOff replay paths do not
// allocate more than the tracer-free run (same pattern as
// bench_online_hotpath).
std::size_t g_alloc_count = 0;

const TraceEvent* FindEvent(const Tracer& tracer, TraceEventKind kind,
                            const Operation& op) {
  for (const TraceEvent& event : tracer.events()) {
    if (event.kind == kind && event.has_op && event.op == op) return &event;
  }
  return nullptr;
}

std::size_t CountEvents(const Tracer& tracer, TraceEventKind kind) {
  std::size_t count = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (event.kind == kind) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Figure 3's S2 under the blocking "ra" scheduler: T1 is atomic relative
// to T2, so after w1[x] executes, T1's open unit [w1[x] r1[z]] delays
// r2[x] — the delay's cause must be exactly the push-forward arc
// r1[z] -> r2[x] of Definition 3.

TEST(TraceGolden, RelativelyAtomicFigure3DelayNamesPushForwardArc) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure3();
  const auto scheduler = MakeScheduler("ra", example.txns, example.spec);
  ASSERT_NE(scheduler, nullptr);
  Tracer tracer(TraceLevel::kFull);

  const ReplayResult result = ReplaySchedule(
      example.txns, scheduler.get(), example.schedule("S2"), &tracer);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.granted, 6u);
  EXPECT_EQ(result.delays, 1u);
  EXPECT_EQ(result.rounds, 2u);

  const Operation r2x = example.txns.txn(1).op(0);  // r2[x]
  const Operation r1z = example.txns.txn(0).op(1);  // r1[z]
  const TraceEvent* delay = FindEvent(tracer, TraceEventKind::kDelay, r2x);
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->cause.kind, TraceCauseKind::kRsgArc);
  EXPECT_EQ(delay->cause.arc_kinds, kPushForwardArc);
  EXPECT_EQ(delay->cause.from, r1z);
  EXPECT_EQ(delay->cause.to, r2x);
  EXPECT_FALSE(delay->cause.note.empty());
  // The delayed op is admitted in the next round.
  const TraceEvent* admit = FindEvent(tracer, TraceEventKind::kAdmit, r2x);
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(admit->tick, 1u);
}

// RSGT admits the whole schedule (S2 is relatively serializable) but
// its arc stream must contain the same witnessing F-arc, recorded when
// r2[x] is certified.
TEST(TraceGolden, RsgtFigure3RecordsPushForwardArc) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure3();
  const auto scheduler = MakeScheduler("rsgt", example.txns, example.spec);
  ASSERT_NE(scheduler, nullptr);
  Tracer tracer(TraceLevel::kFull);

  const ReplayResult result = ReplaySchedule(
      example.txns, scheduler.get(), example.schedule("S2"), &tracer);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.delays, 0u);
  EXPECT_EQ(result.rounds, 1u);

  const Operation r2x = example.txns.txn(1).op(0);
  const Operation r1z = example.txns.txn(0).op(1);
  bool found_f_arc = false;
  for (const TraceEvent& event : tracer.events()) {
    if (event.kind == TraceEventKind::kArc &&
        event.cause.arc_kinds == kPushForwardArc &&
        event.cause.from == r1z && event.cause.to == r2x) {
      found_f_arc = true;
    }
  }
  EXPECT_TRUE(found_f_arc);
}

// Figure 1's S2 is relatively serializable but not conflict
// serializable: RSGT admits all 10 operations, SGT must reject one and
// name a witnessing conflict arc.
TEST(TraceGolden, RsgtAdmitsFigure1S2Completely) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure1();
  const auto scheduler = MakeScheduler("rsgt", example.txns, example.spec);
  Tracer tracer(TraceLevel::kFull);
  const ReplayResult result = ReplaySchedule(
      example.txns, scheduler.get(), example.schedule("S2"), &tracer);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.granted, 10u);
  EXPECT_EQ(CountEvents(tracer, TraceEventKind::kAdmit), 10u);
  EXPECT_EQ(CountEvents(tracer, TraceEventKind::kReject), 0u);
  EXPECT_EQ(CountEvents(tracer, TraceEventKind::kCommit), 3u);
}

TEST(TraceGolden, SgtRejectsFigure1S2WithConflictArc) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure1();
  const auto scheduler = MakeScheduler("sgt", example.txns, example.spec);
  Tracer tracer(TraceLevel::kFull);
  const ReplayResult result = ReplaySchedule(
      example.txns, scheduler.get(), example.schedule("S2"), &tracer);
  EXPECT_FALSE(result.completed);
  // w3[y]'s rejection kills T3; r1[y] then closes T1 -> T2 -> T1 against
  // the standing w1[x] -> r2[x] arc and T1 dies too.  Only T2 commits.
  EXPECT_EQ(result.aborted_txns, 2u);
  ASSERT_EQ(CountEvents(tracer, TraceEventKind::kReject), 2u);
  EXPECT_EQ(CountEvents(tracer, TraceEventKind::kCommit), 1u);

  const Operation w3y = example.txns.txn(2).op(1);  // w3[y] closes the cycle
  const TraceEvent* reject = FindEvent(tracer, TraceEventKind::kReject, w3y);
  ASSERT_NE(reject, nullptr);
  EXPECT_EQ(reject->cause.kind, TraceCauseKind::kConflictArc);
  EXPECT_EQ(reject->cause.arc_kinds, 0);  // txn-level arc, rendered "C"
  EXPECT_EQ(reject->cause.to, w3y);
  // The witnessing conflict access belongs to T2 (the T2 -> T3 arc that
  // closes the cycle against the standing T3 -> T2 arc).
  EXPECT_EQ(reject->cause.from.txn, 1u);
  EXPECT_EQ(reject->cause.from.object, w3y.object);
}

// ---------------------------------------------------------------------------
// Schema + counter invariants across every figure and both certification
// schedulers.

TEST(TraceInvariants, FiguresSweepCountersAndSchema) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  for (const PaperExample& example : AllPaperExamples()) {
    for (const char* name : {"rsgt", "sgt"}) {
      for (const auto& [schedule_name, schedule] : example.schedules) {
        const auto scheduler = MakeScheduler(name, example.txns, example.spec);
        Tracer tracer(TraceLevel::kFull);
        ReplaySchedule(example.txns, scheduler.get(), schedule, &tracer);

        const TraceCounters& counters = tracer.counters();
        EXPECT_EQ(counters.requests,
                  counters.admits + counters.delays + counters.rejects)
            << example.name << "/" << schedule_name << " under " << name;
        EXPECT_GE(counters.arcs_submitted, counters.arcs_inserted);

        const std::string jsonl = TraceToJsonl(tracer, example.txns);
        const TraceValidation validation = ValidateTraceJsonl(jsonl);
        EXPECT_TRUE(validation.ok)
            << example.name << "/" << schedule_name << " under " << name
            << ": " << (validation.errors.empty() ? "no events"
                                                  : validation.errors[0]);
      }
    }
  }
}

TEST(TraceInvariants, EngineRunCountersConsistent) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure1();
  for (const char* name : {"rsgt", "sgt", "2pl", "unit2pl", "ra"}) {
    const auto scheduler = MakeScheduler(name, example.txns, example.spec);
    ASSERT_NE(scheduler, nullptr) << name;
    Tracer tracer(TraceLevel::kFull);
    SimParams params;
    params.tracer = &tracer;
    const SimResult result =
        RunSimulation(example.txns, scheduler.get(), params);
    ASSERT_TRUE(result.metrics.completed) << name;

    const TraceCounters& counters = tracer.counters();
    EXPECT_EQ(counters.requests,
              counters.admits + counters.delays + counters.rejects)
        << name;
    EXPECT_EQ(counters.admits, result.metrics.grants) << name;
    EXPECT_EQ(counters.delays, result.metrics.blocks) << name;
    EXPECT_EQ(counters.commits, example.txns.txn_count()) << name;
    EXPECT_EQ(counters.aborts, result.metrics.aborts) << name;
    EXPECT_EQ(counters.cascade_aborts, result.metrics.cascade_aborts) << name;

    const std::string jsonl = TraceToJsonl(tracer, example.txns);
    EXPECT_TRUE(ValidateTraceJsonl(jsonl).ok) << name;
  }
}

TEST(TraceInvariants, SnapshotJsonParsesAndMatchesCounters) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure3();
  const auto scheduler = MakeScheduler("rsgt", example.txns, example.spec);
  Tracer tracer(TraceLevel::kFull);
  ReplaySchedule(example.txns, scheduler.get(), example.schedule("S2"),
                 &tracer);

  const std::string json = SnapshotToJson(tracer.Snapshot());
  const auto parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* admits = parsed->Find("admits");
  ASSERT_NE(admits, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(admits->number_value()),
            tracer.counters().admits);
  ASSERT_NE(parsed->Find("admit_p50_ns"), nullptr);
  ASSERT_NE(parsed->Find("admit_p99_ns"), nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(
                parsed->Find("admit_latency_samples")->number_value()),
            tracer.counters().admits);
}

// One synchronous client makes the concurrent admitter's counters fully
// deterministic: every SubmitAndWait blocks until its decision, so the
// core drains exactly one operation per batch.
TEST(TraceInvariants, AdmitterCountersGoldenForSynchronousClient) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure1();
  const Schedule& schedule = example.schedule("S2");
  Tracer tracer(TraceLevel::kCounters);
  AdmitterOptions options;
  options.tracer = &tracer;
  {
    ConcurrentAdmitter admitter(example.txns, example.spec, options);
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      admitter.SubmitAndWait(schedule.op(i));
    }
    admitter.Stop();
    EXPECT_EQ(admitter.accepted() + admitter.rejected(), schedule.size());
  }
  const TraceCounters& counters = tracer.counters();
  EXPECT_EQ(counters.batches, schedule.size());
  EXPECT_EQ(counters.batched_ops, schedule.size());
  EXPECT_EQ(counters.queue_depth_high_water, 1u);
  EXPECT_EQ(counters.requests, counters.admits + counters.rejects);
  EXPECT_EQ(counters.admits + counters.rejects, schedule.size());

  // Every batch had size 1, so the whole distribution sits in the first
  // histogram bucket (the estimator may interpolate inside the bucket,
  // but p50 and p99 must coincide and stay below the next bucket).
  const TraceSnapshot snapshot = tracer.Snapshot();
  EXPECT_EQ(snapshot.batch_size_p50, snapshot.batch_size_p99);
  EXPECT_GE(snapshot.batch_size_p50, 1.0);
  EXPECT_LT(snapshot.batch_size_p50, 2.0);
  const auto parsed = JsonValue::Parse(SnapshotToJson(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const char* key : {"batches", "batched_ops", "queue_depth_high_water",
                          "batch_size_p50", "batch_size_p99"}) {
    ASSERT_NE(parsed->Find(key), nullptr) << key;
  }
  EXPECT_EQ(
      static_cast<std::uint64_t>(parsed->Find("batches")->number_value()),
      counters.batches);
}

TEST(TraceInvariants, ChromeTraceIsValidJsonWithPerTxnLanes) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure3();
  const auto scheduler = MakeScheduler("ra", example.txns, example.spec);
  Tracer tracer(TraceLevel::kFull);
  ReplaySchedule(example.txns, scheduler.get(), example.schedule("S2"),
                 &tracer);

  const std::string chrome = TraceToChromeJson(tracer, example.txns);
  const auto parsed = JsonValue::Parse(chrome);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata: one process_name + one thread_name per transaction.
  std::size_t lanes = 0;
  for (const JsonValue& event : events->array_items()) {
    const JsonValue* name = event.Find("name");
    if (name != nullptr && name->string_value() == "thread_name") ++lanes;
  }
  EXPECT_EQ(lanes, example.txns.txn_count());
  EXPECT_GT(events->array_items().size(),
            1 + example.txns.txn_count());  // metadata + real events
}

TEST(TraceInvariants, SummaryAttributesTopBlockingCause) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure3();
  const auto scheduler = MakeScheduler("ra", example.txns, example.spec);
  Tracer tracer(TraceLevel::kFull);
  ReplaySchedule(example.txns, scheduler.get(), example.schedule("S2"),
                 &tracer);

  const TraceSummary summary =
      SummarizeTraceJsonl(TraceToJsonl(tracer, example.txns));
  EXPECT_EQ(summary.admits, 6u);
  EXPECT_EQ(summary.delays, 1u);
  ASSERT_FALSE(summary.top_blocking.empty());
  EXPECT_NE(summary.top_blocking[0].label.find("F-arc r1[z] -> r2[x]"),
            std::string::npos)
      << summary.top_blocking[0].label;
  ASSERT_FALSE(summary.longest_delayed.empty());
  EXPECT_EQ(summary.longest_delayed[0].op, "r2[x]");
  EXPECT_EQ(summary.longest_delayed[0].wait_ticks(), 1u);
}

// ---------------------------------------------------------------------------
// Disabled-path guarantees: a kOff tracer records nothing, and neither a
// missing tracer nor a kOff tracer changes the allocation profile of a
// replay (the zero-overhead-when-disabled contract of docs/hotpath.md).

std::size_t ReplayAllocations(Tracer* tracer) {
  const PaperExample example = Figure1();
  const auto scheduler = MakeScheduler("rsgt", example.txns, example.spec);
  const std::size_t before = g_alloc_count;
  ReplaySchedule(example.txns, scheduler.get(), example.schedule("S2"),
                 tracer);
  return g_alloc_count - before;
}

TEST(TraceDisabled, OffTracerRecordsNothing) {
  const PaperExample example = Figure1();
  const auto scheduler = MakeScheduler("rsgt", example.txns, example.spec);
  Tracer tracer(TraceLevel::kOff);
  ReplaySchedule(example.txns, scheduler.get(), example.schedule("S2"),
                 &tracer);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.counters().requests, 0u);
  EXPECT_EQ(tracer.counters().admits, 0u);
  EXPECT_EQ(tracer.Snapshot().admit_latency_samples, 0u);
}

TEST(TraceDisabled, OffTracerAllocationParityWithNoTracer) {
  // Warm-up run so one-time lazy allocations don't skew the comparison.
  ReplayAllocations(nullptr);
  const std::size_t without = ReplayAllocations(nullptr);
  Tracer off(TraceLevel::kOff);
  const std::size_t with_off = ReplayAllocations(&off);
  EXPECT_EQ(without, with_off);
  EXPECT_TRUE(off.events().empty());
}

TEST(TraceDisabled, CountersLevelKeepsCountsButNoEvents) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const PaperExample example = Figure3();
  const auto scheduler = MakeScheduler("ra", example.txns, example.spec);
  Tracer tracer(TraceLevel::kCounters);
  ReplaySchedule(example.txns, scheduler.get(), example.schedule("S2"),
                 &tracer);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.counters().admits, 6u);
  EXPECT_EQ(tracer.counters().delays, 1u);
  EXPECT_EQ(tracer.counters().requests, 7u);
}

// Validation must actually reject malformed traces, not just accept
// everything (guards the guard).
TEST(TraceSchema, ValidatorRejectsMalformedEvents) {
  const char* header =
      "{\"kind\":\"header\",\"version\":1,\"format\":\"relser-trace\","
      "\"txn_count\":3,\"events\":2}\n";
  EXPECT_FALSE(ValidateTraceJsonl("").ok);
  EXPECT_FALSE(ValidateTraceJsonl("not json\n").ok);
  EXPECT_FALSE(ValidateTraceJsonl(
                   std::string(header) +
                   "{\"seq\":0,\"tick\":0,\"txn\":1}\n")
                   .ok);
  // Decision events require op fields and latency.
  EXPECT_FALSE(ValidateTraceJsonl(
                   std::string(header) +
                   "{\"seq\":0,\"tick\":0,\"kind\":\"admit\",\"txn\":1}\n")
                   .ok);
  // Sequence numbers must strictly increase.
  const std::string dup_seq =
      std::string(header) +
      "{\"seq\":0,\"tick\":0,\"kind\":\"commit\",\"txn\":1}\n"
      "{\"seq\":0,\"tick\":0,\"kind\":\"commit\",\"txn\":2}\n";
  EXPECT_FALSE(ValidateTraceJsonl(dup_seq).ok);
  // A well-formed minimal trace passes.
  const std::string good =
      std::string(header) +
      "{\"seq\":0,\"tick\":0,\"kind\":\"commit\",\"txn\":1}\n"
      "{\"seq\":1,\"tick\":0,\"kind\":\"commit\",\"txn\":2}\n";
  EXPECT_TRUE(ValidateTraceJsonl(good).ok);
  // The header is not optional, and its version must match this build.
  EXPECT_FALSE(ValidateTraceJsonl(
                   "{\"seq\":0,\"tick\":0,\"kind\":\"commit\",\"txn\":1}\n")
                   .ok);
  EXPECT_FALSE(ValidateTraceJsonl(
                   "{\"kind\":\"header\",\"version\":999,"
                   "\"format\":\"relser-trace\"}\n")
                   .ok);
}

}  // namespace
}  // namespace relser

// Global counting operator new/delete (outside any namespace). Kept
// out-of-line so the optimizer cannot pair an inlined malloc with a
// caller's sized delete and raise -Wmismatched-new-delete.
__attribute__((noinline)) void* operator new(std::size_t size) {
  ++relser::g_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void* operator new(std::size_t size,
                                             const std::nothrow_t&) noexcept {
  ++relser::g_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
__attribute__((noinline)) void* operator new[](
    std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
__attribute__((noinline)) void operator delete(
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}
