// Tests for the depends-on relation (Section 2): direct steps, transitive
// closure, and the invariance property the brute-force searches rely on
// (conflict-equivalent schedules share one depends-on relation).
#include <gtest/gtest.h>

#include "core/depends.h"
#include "model/conflict.h"
#include "model/enumerate.h"
#include "model/text.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace relser {
namespace {

TEST(DependsOn, ProgramOrderIsDirect) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[y] r1[z]\nT2 = w2[q]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] w2[q] w1[y] r1[z]");
  const DependsOnRelation depends(*txns, *schedule);
  const Operation r1x = txns->txn(0).op(0);
  const Operation w1y = txns->txn(0).op(1);
  const Operation r1z = txns->txn(0).op(2);
  EXPECT_TRUE(depends.DirectlyDependsOn(w1y, r1x));
  EXPECT_TRUE(depends.DirectlyDependsOn(r1z, r1x));  // same txn, any gap
  EXPECT_TRUE(depends.DependsOn(r1z, r1x));
  EXPECT_FALSE(depends.DependsOn(r1x, r1z));  // respects order
}

TEST(DependsOn, ConflictIsDirect) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x]");
  const DependsOnRelation depends(*txns, *schedule);
  EXPECT_TRUE(depends.DirectlyDependsOn(txns->txn(1).op(0),
                                        txns->txn(0).op(0)));
  EXPECT_FALSE(depends.DirectlyDependsOn(txns->txn(0).op(0),
                                         txns->txn(1).op(0)));
}

TEST(DependsOn, ReadsDoNotDepend) {
  auto txns = ParseTransactionSet("T1 = r1[x]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] r2[x]");
  const DependsOnRelation depends(*txns, *schedule);
  EXPECT_FALSE(depends.Related(txns->txn(0).op(0), txns->txn(1).op(0)));
  EXPECT_EQ(depends.PairCount(), 0u);
}

TEST(DependsOn, TransitiveChainAcrossTransactions) {
  // w1[a] -> r2[a] -> (program) w2[b] -> r3[b]: r3[b] depends on w1[a].
  auto txns = ParseTransactionSet(
      "T1 = w1[a]\nT2 = r2[a] w2[b]\nT3 = r3[b]\n");
  auto schedule = ParseSchedule(*txns, "w1[a] r2[a] w2[b] r3[b]");
  const DependsOnRelation depends(*txns, *schedule);
  const Operation w1a = txns->txn(0).op(0);
  const Operation r3b = txns->txn(2).op(0);
  EXPECT_TRUE(depends.DependsOn(r3b, w1a));
  EXPECT_FALSE(depends.DirectlyDependsOn(r3b, w1a));
}

TEST(DependsOn, ScheduleOrderBreaksChains) {
  // Same transactions; r3[b] before w2[b]: no chain into r3[b].
  auto txns = ParseTransactionSet(
      "T1 = w1[a]\nT2 = r2[a] w2[b]\nT3 = r3[b]\n");
  auto schedule = ParseSchedule(*txns, "w1[a] r2[a] r3[b] w2[b]");
  const DependsOnRelation depends(*txns, *schedule);
  EXPECT_FALSE(depends.DependsOn(txns->txn(2).op(0), txns->txn(0).op(0)));
  // But w2[b] now depends on r3[b] (conflict in the other direction).
  EXPECT_TRUE(depends.DependsOn(txns->txn(1).op(1), txns->txn(2).op(0)));
}

TEST(DependsOn, IrreflexiveAndAntisymmetric) {
  Rng rng(33);
  WorkloadParams wp;
  wp.txn_count = 3;
  wp.object_count = 3;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const Schedule schedule = RandomSchedule(txns, &rng);
  const DependsOnRelation depends(txns, schedule);
  for (const Operation& a : schedule.ops()) {
    EXPECT_FALSE(depends.DependsOn(a, a));
    for (const Operation& b : schedule.ops()) {
      if (a == b) continue;
      EXPECT_FALSE(depends.DependsOn(a, b) && depends.DependsOn(b, a));
    }
  }
}

TEST(DependsOn, TransitivityHolds) {
  Rng rng(34);
  for (int round = 0; round < 10; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.object_count = 2;
    wp.read_ratio = 0.3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const DependsOnRelation depends(txns, schedule);
    const auto& ops = schedule.ops();
    for (const Operation& a : ops) {
      for (const Operation& b : ops) {
        for (const Operation& c : ops) {
          if (depends.DependsOn(b, a) && depends.DependsOn(c, b)) {
            EXPECT_TRUE(depends.DependsOn(c, a));
          }
        }
      }
    }
  }
}

TEST(DependsOn, ClosureOfDirectSteps) {
  // depends-on must equal the transitive closure of directly-depends-on:
  // cross-check by explicit Floyd-Warshall over the direct relation.
  Rng rng(35);
  for (int round = 0; round < 15; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const DependsOnRelation depends(txns, schedule);
    const std::size_t n = schedule.size();
    std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        closure[i][j] =
            depends.DirectlyDependsOn(schedule.op(j), schedule.op(i));
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          closure[i][j] =
              closure[i][j] || (closure[i][k] && closure[k][j]);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(depends.DependsOnByPosition(j, i), closure[i][j])
            << "round " << round << " positions " << i << "->" << j;
      }
    }
  }
}

TEST(DependsOn, InvariantAcrossConflictEquivalentSchedules) {
  // The key property the brute-force searches exploit: every schedule in
  // a conflict-equivalence class induces the same depends-on relation
  // (compared op-to-op, not position-to-position).
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[y]\nT2 = w2[x]\nT3 = r3[y]\n");
  auto base = ParseSchedule(*txns, "r1[x] w2[x] w1[y] r3[y]");
  ASSERT_TRUE(base.ok());
  const DependsOnRelation base_depends(*txns, *base);
  EnumerateSchedules(*txns, [&](const Schedule& other) {
    if (!ConflictEquivalent(*txns, *base, other)) return true;
    const DependsOnRelation other_depends(*txns, other);
    for (const Operation& a : base->ops()) {
      for (const Operation& b : base->ops()) {
        if (a == b) continue;
        EXPECT_EQ(base_depends.DependsOn(b, a), other_depends.DependsOn(b, a));
      }
    }
    return true;
  });
}

TEST(DependsOn, AffectedPositionsMatchesPointQueries) {
  Rng rng(36);
  WorkloadParams wp;
  wp.txn_count = 3;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const Schedule schedule = RandomSchedule(txns, &rng);
  const DependsOnRelation depends(txns, schedule);
  for (std::size_t p = 0; p < schedule.size(); ++p) {
    const DenseBitset& affected = depends.AffectedPositions(p);
    for (std::size_t q = 0; q < schedule.size(); ++q) {
      EXPECT_EQ(affected.Test(q), depends.DependsOnByPosition(q, p));
    }
  }
}

}  // namespace
}  // namespace relser
