// Differential tests for the frontier-pruned OnlineRsrChecker.
//
// The optimization contract is *bit-identical admission*: the optimized
// checker must accept/reject at exactly the same schedule prefix as the
// full formulation. Two independent references pin this down:
//
//  1. OnlineRsrCheckerBaseline — the pre-optimization checker (per-op
//     ancestor bitsets, D/F/B arc fan-out per transitive ancestor).
//  2. A batch oracle implemented here from Definition 3 directly: for
//     every fed prefix, rebuild the prefix RSG from scratch (depends-on
//     closure over the fed-op list, then I/D/F/B arcs) and test
//     acyclicity with the offline HasCycle. This shares no code with
//     either online admission path.
//
// The oracle's I-arcs connect only *fed* operations: the online graphs
// never see an unfed operation's program-order arc, and an I-arc chain
// through unfed operations could close a cycle the online prefix cannot.
// F/B arc endpoints may be unfed nodes, exactly as in the online graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/online.h"
#include "core/online_baseline.h"
#include "core/paper_examples.h"
#include "core/rsr.h"
#include "exec/thread_pool.h"
#include "graph/cycle.h"
#include "graph/digraph.h"
#include "model/op_indexer.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

// RSG of the fed prefix, per Definition 3, over the raw fed-op list.
Digraph BuildPrefixRsg(const TransactionSet& txns, const OpIndexer& indexer,
                       const std::vector<Operation>& fed,
                       const AtomicitySpec& spec) {
  Digraph graph(indexer.total_ops());
  // I-arcs between consecutive fed operations of each transaction (ops
  // are fed in program order, so each transaction's fed set is a prefix).
  std::vector<std::uint32_t> fed_count(txns.txn_count(), 0);
  for (const Operation& op : fed) {
    fed_count[op.txn] = std::max(fed_count[op.txn], op.index + 1);
  }
  for (TxnId i = 0; i < txns.txn_count(); ++i) {
    for (std::uint32_t j = 0; j + 1 < fed_count[i]; ++j) {
      graph.AddEdge(indexer.GlobalId(i, j), indexer.GlobalId(i, j + 1));
    }
  }
  // Depends-on closure over fed positions: backward sweep of bit unions,
  // one direct edge per (same txn | conflict) pair in feed order.
  const std::size_t n = fed.size();
  std::vector<DenseBitset> reach;
  reach.reserve(n);
  for (std::size_t p = 0; p < n; ++p) reach.emplace_back(n);
  for (std::size_t p = n; p-- > 0;) {
    for (std::size_t q = p + 1; q < n; ++q) {
      if (fed[p].txn == fed[q].txn || Conflicts(fed[p], fed[q])) {
        reach[p].Set(q);
        reach[p].UnionWith(reach[q]);
      }
    }
  }
  // D/F/B arcs for every cross-transaction dependent pair (rules 2-4).
  for (std::size_t p = 0; p < n; ++p) {
    const Operation& u = fed[p];
    for (std::size_t q = reach[p].FindNext(p + 1); q < n;
         q = reach[p].FindNext(q + 1)) {
      const Operation& v = fed[q];
      if (v.txn == u.txn) continue;
      const NodeId u_id = indexer.GlobalId(u);
      const NodeId v_id = indexer.GlobalId(v);
      graph.AddEdge(u_id, v_id);
      const std::uint32_t pushed = spec.PushForward(u.txn, v.txn, u.index);
      graph.AddEdge(indexer.GlobalId(u.txn, pushed), v_id);
      const std::uint32_t pulled = spec.PullBackward(v.txn, u.txn, v.index);
      graph.AddEdge(u_id, indexer.GlobalId(v.txn, pulled));
    }
  }
  return graph;
}

// Position of the first operation whose prefix RSG turns cyclic, or
// schedule.size() when every prefix stays acyclic.
std::size_t OracleFirstRejection(const TransactionSet& txns,
                                 const AtomicitySpec& spec,
                                 const Schedule& schedule) {
  const OpIndexer indexer(txns);
  std::vector<Operation> fed;
  fed.reserve(schedule.size());
  for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
    fed.push_back(schedule.op(pos));
    if (HasCycle(BuildPrefixRsg(txns, indexer, fed, spec))) return pos;
  }
  return schedule.size();
}

AtomicitySpec DrawSpec(const TransactionSet& txns, Rng* rng) {
  switch (rng->UniformIndex(4)) {
    case 0:
      return RandomSpec(txns, rng->UniformDouble(), rng);
    case 1:
      return RandomUniformObserverSpec(txns, rng->UniformDouble(), rng);
    case 2:
      return RandomCompatibilitySetSpec(txns, 1 + rng->UniformIndex(3), rng);
    default:
      return RandomMultilevelSpec(txns, 1 + rng->UniformIndex(2),
                                  rng->UniformDouble() * 0.5,
                                  rng->UniformDouble(), rng);
  }
}

TEST(DifferentialOnline, OptimizedMatchesBaselineAndOracleOnRandomWorkloads) {
  constexpr std::size_t kRounds = 1200;
  struct RoundOutcome {
    std::size_t oracle = 0;
    std::size_t optimized = 0;
    std::size_t baseline = 0;
    std::size_t schedule_size = 0;
  };
  const Rng base(0xD1FF);
  std::vector<RoundOutcome> outcomes(kRounds);
  ThreadPool pool(ThreadPool::HardwareConcurrency());
  // Rounds are Rng::Split-seeded, so the sweep is independent of thread
  // count. gtest assertions are not thread-safe: workers only fill their
  // private outcome slot; every assertion runs on the main thread below.
  ParallelFor(&pool, 0, kRounds, /*grain=*/8,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t round = lo; round < hi; ++round) {
                  Rng rng = base.Split(round);
                  WorkloadParams wp;
                  wp.txn_count = 2 + rng.UniformIndex(4);
                  wp.min_ops_per_txn = 1;
                  wp.max_ops_per_txn = 5;
                  wp.object_count = 2 + rng.UniformIndex(3);
                  wp.read_ratio = 0.3 + 0.4 * rng.UniformDouble();
                  const TransactionSet txns = GenerateTransactions(wp, &rng);
                  const AtomicitySpec spec = DrawSpec(txns, &rng);
                  const Schedule schedule = RandomSchedule(txns, &rng);
                  RoundOutcome& out = outcomes[round];
                  out.schedule_size = schedule.size();
                  out.oracle = OracleFirstRejection(txns, spec, schedule);
                  out.optimized =
                      OnlineRsrChecker::FirstRejection(txns, spec, schedule);
                  out.baseline = OnlineRsrCheckerBaseline::FirstRejection(
                      txns, spec, schedule);
                }
              });
  int rejected_cases = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const RoundOutcome& out = outcomes[round];
    ASSERT_EQ(out.optimized, out.oracle)
        << "round " << round << ": optimized rejects at " << out.optimized
        << ", oracle at " << out.oracle << " of " << out.schedule_size;
    ASSERT_EQ(out.baseline, out.oracle)
        << "round " << round << ": baseline rejects at " << out.baseline
        << ", oracle at " << out.oracle << " of " << out.schedule_size;
    if (out.oracle < out.schedule_size) ++rejected_cases;
  }
  // The sweep must exercise both outcomes heavily to mean anything.
  EXPECT_GE(rejected_cases, 100);
}

TEST(DifferentialOnline, OptimizedMatchesBaselineAndOracleOnPaperExamples) {
  for (const PaperExample& example : AllPaperExamples()) {
    for (const auto& [name, schedule] : example.schedules) {
      const std::size_t oracle =
          OracleFirstRejection(example.txns, example.spec, schedule);
      const std::size_t optimized =
          OnlineRsrChecker::FirstRejection(example.txns, example.spec,
                                           schedule);
      const std::size_t baseline = OnlineRsrCheckerBaseline::FirstRejection(
          example.txns, example.spec, schedule);
      EXPECT_EQ(optimized, oracle) << example.name << "/" << name;
      EXPECT_EQ(baseline, oracle) << example.name << "/" << name;
      // Full acceptance must coincide with the offline Theorem 1 test.
      EXPECT_EQ(oracle == schedule.size(),
                IsRelativelySerializable(example.txns, schedule, example.spec))
          << example.name << "/" << name;
    }
  }
}

TEST(DifferentialOnline, FrontierPruningNeverInsertsMoreArcsThanBaseline) {
  Rng rng(0xA2C5);
  for (int round = 0; round < 200; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(3);
    wp.min_ops_per_txn = 2;
    wp.max_ops_per_txn = 6;
    wp.object_count = 2 + rng.UniformIndex(3);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = DrawSpec(txns, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);

    OnlineRsrChecker optimized(txns, spec);
    OnlineRsrCheckerBaseline baseline(txns, spec);
    for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
      const bool a = optimized.TryAppend(schedule.op(pos)).ok();
      const bool b = baseline.TryAppend(schedule.op(pos));
      ASSERT_EQ(a, b) << "round " << round << " pos " << pos;
      if (!a) break;
    }
    EXPECT_LE(optimized.topology().edge_count(),
              baseline.topology().edge_count())
        << "round " << round;
  }
}

// Abort-path soundness: after any mix of accepted operations, rejections
// and RemoveTransaction calls, every execution the checker has admitted
// must still be relatively serializable. (Post-abort the checker is a
// documented over-approximation, so cross-implementation agreement is not
// required — only soundness of what it accepts.)
TEST(DifferentialOnline, AcceptedExecutionsStaySoundAcrossAborts) {
  Rng rng(0xAB0F);
  for (int round = 0; round < 250; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(3);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 4;
    wp.object_count = 2 + rng.UniformIndex(2);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = DrawSpec(txns, &rng);
    const OpIndexer indexer(txns);
    OnlineRsrChecker checker(txns, spec);

    std::vector<Operation> fed;  // surviving execution, feed order
    std::vector<std::uint32_t> next(txns.txn_count(), 0);
    auto drop_txn = [&](TxnId t) {
      checker.RemoveTransaction(t);
      std::erase_if(fed, [t](const Operation& op) { return op.txn == t; });
      next[t] = 0;
    };

    for (int step = 0; step < 60; ++step) {
      const TxnId t = static_cast<TxnId>(rng.UniformIndex(txns.txn_count()));
      if (next[t] < txns.txn(t).size() && rng.UniformDouble() < 0.85) {
        const Operation& op = txns.txn(t).op(next[t]);
        if (checker.TryAppend(op)) {
          fed.push_back(op);
          ++next[t];
        } else {
          // Rejected: the transaction cannot proceed; abort and retry it
          // from scratch later, as a scheduler would.
          drop_txn(t);
        }
      } else if (next[t] > 0 && rng.UniformDouble() < 0.3) {
        drop_txn(t);  // spontaneous abort of a partially executed txn
      }
      ASSERT_EQ(checker.executed_count(), fed.size()) << "round " << round;
      ASSERT_FALSE(HasCycle(BuildPrefixRsg(txns, indexer, fed, spec)))
          << "round " << round << " step " << step
          << ": checker admitted a non-RSR execution";
    }
    for (const Operation& op : fed) {
      EXPECT_TRUE(checker.Executed(op.txn, op.index));
    }
  }
}

}  // namespace
}  // namespace relser
