// Broad randomized differential stress tests tying all decision
// procedures together on one instance stream:
//
//   RSG test == online checker == brute-force oracle
//   classifier lattice invariants
//   witness validity
//   scheduler guarantees across all protocols and spec families
//
// Sizes are kept small enough for ctest (a second or two) while still
// covering thousands of decisions; crank kRounds up for soak testing.
#include <gtest/gtest.h>

#include <memory>

#include "core/brute.h"
#include "core/checkers.h"
#include "core/classify.h"
#include "core/online.h"
#include "core/rsr.h"
#include "model/conflict.h"
#include "model/recovery.h"
#include "sched/engine.h"
#include "sched/factory.h"
#include "sched/verify.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/scenarios.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

constexpr int kRounds = 150;

AtomicitySpec RandomFamilySpec(const TransactionSet& txns, Rng* rng) {
  switch (rng->UniformIndex(4)) {
    case 0:
      return RandomSpec(txns, rng->UniformDouble(), rng);
    case 1:
      return RandomUniformObserverSpec(txns, rng->UniformDouble(), rng);
    case 2:
      return RandomCompatibilitySetSpec(txns, 1 + rng->UniformIndex(3), rng);
    default:
      return RandomMultilevelSpec(txns, 1 + rng->UniformIndex(3),
                                  rng->UniformDouble() * 0.5,
                                  rng->UniformDouble(), rng);
  }
}

TEST(Stress, AllDecisionProceduresAgree) {
  Rng rng(0x57E55);
  for (int round = 0; round < kRounds; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(3);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 4;
    wp.object_count = 2 + rng.UniformIndex(4);
    wp.read_ratio = rng.UniformDouble();
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomFamilySpec(txns, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);

    const bool offline = IsRelativelySerializable(txns, schedule, spec);
    const std::size_t online_rejection =
        OnlineRsrChecker::FirstRejection(txns, spec, schedule);
    EXPECT_EQ(offline, online_rejection == schedule.size())
        << "round " << round;
    const BruteForceResult oracle =
        BruteForceRelativelySerializable(txns, schedule, spec);
    ASSERT_TRUE(oracle.decided.has_value());
    EXPECT_EQ(offline, *oracle.decided) << "round " << round;

    ClassifyOptions options;
    options.with_relative_consistency = true;
    options.brute_force_budget = 1u << 22;
    const ScheduleClassification c = Classify(txns, schedule, spec, options);
    CheckLatticeInvariants(c);
    EXPECT_EQ(c.relatively_serializable, offline);

    if (offline) {
      const RsrAnalysis analysis =
          AnalyzeRelativeSerializability(txns, schedule, spec);
      ASSERT_TRUE(analysis.witness.has_value());
      EXPECT_TRUE(ConflictEquivalent(txns, schedule, *analysis.witness));
      EXPECT_TRUE(IsRelativelySerial(txns, *analysis.witness, spec));
    }
  }
}

TEST(Stress, SchedulersSurviveEveryFamilyAndKeepGuarantees) {
  Rng rng(0x57E56);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3 + rng.UniformIndex(4);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    wp.object_count = 2 + rng.UniformIndex(8);
    wp.zipf_theta = rng.UniformDouble();
    wp.read_ratio = rng.UniformDouble();
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomFamilySpec(txns, &rng);
    const std::string& name = rng.Choice(AllSchedulerNames());
    auto scheduler = MakeScheduler(name, txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 300000;
    if (rng.Bernoulli(0.3)) sp.think_time = {1 + rng.UniformIndex(3)};
    const SimResult result = RunSimulation(txns, scheduler.get(), sp);
    ASSERT_TRUE(result.metrics.completed)
        << name << " stalled at round " << round;
    const RunVerification verification =
        VerifyRun(txns, spec, result, GuaranteeOf(name));
    EXPECT_TRUE(verification.guarantee_held)
        << name << " violated its guarantee at round " << round;
    // Recovery classification must satisfy its own lattice.
    auto schedule = result.CommittedSchedule(txns);
    ASSERT_TRUE(schedule.ok());
    CheckRecoveryInvariants(ClassifyRecovery(txns, *schedule));
  }
}

TEST(Stress, ScenarioWorkloadsUnderRandomSchedulers) {
  Rng rng(0x57E57);
  for (int round = 0; round < 10; ++round) {
    BankingParams bp;
    bp.families = 1 + rng.UniformIndex(3);
    bp.customers_per_family = 1 + rng.UniformIndex(3);
    bp.transfers_per_customer = 1 + rng.UniformIndex(2);
    bp.credit_audits = rng.UniformIndex(bp.families + 1);
    const BankingScenario banking = MakeBankingScenario(bp, &rng);
    CadParams cp;
    cp.teams = 1 + rng.UniformIndex(2);
    cp.designers_per_team = 1 + rng.UniformIndex(3);
    cp.phases = 1 + rng.UniformIndex(3);
    const CadScenario cad = MakeCadScenario(cp, &rng);
    struct Case {
      const TransactionSet& txns;
      const AtomicitySpec& spec;
    };
    for (const Case& c : {Case{banking.txns, banking.spec},
                          Case{cad.txns, cad.spec}}) {
      const std::string& name = rng.Choice(AllSchedulerNames());
      auto scheduler = MakeScheduler(name, c.txns, c.spec);
      SimParams sp;
      sp.seed = rng.Next();
      sp.max_ticks = 300000;
      const SimResult result = RunSimulation(c.txns, scheduler.get(), sp);
      ASSERT_TRUE(result.metrics.completed) << name;
      const RunVerification verification =
          VerifyRun(c.txns, c.spec, result, GuaranteeOf(name));
      EXPECT_TRUE(verification.guarantee_held) << name;
    }
  }
}

}  // namespace
}  // namespace relser
