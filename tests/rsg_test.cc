// Tests for the relative serialization graph (Definition 3) beyond the
// Figure 3 example: arc-set structure, Lemma 2 (consistency of arcs with
// relatively serial schedules), and reductions under extreme specs.
#include <gtest/gtest.h>

#include "core/checkers.h"
#include "core/rsg.h"
#include "graph/cycle.h"
#include "model/conflict.h"
#include "model/text.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(ArcKinds, ToStringFormatsBitmask) {
  EXPECT_EQ(ArcKindsToString(kInternalArc), "I");
  EXPECT_EQ(ArcKindsToString(kDependencyArc | kPushForwardArc), "D,F");
  EXPECT_EQ(ArcKindsToString(kDependencyArc | kPushForwardArc |
                             kPullBackwardArc),
            "D,F,B");
  EXPECT_EQ(ArcKindsToString(0), "");
}

TEST(Rsg, InternalArcsChainEachTransaction) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x] w1[y]\nT2 = r2[q]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] w1[x] w1[y] r2[q]");
  const RelativeSerializationGraph rsg(*txns, *schedule, AbsoluteSpec(*txns));
  const OpIndexer& ix = rsg.indexer();
  EXPECT_TRUE(rsg.HasArc(ix.GlobalId(0, 0), ix.GlobalId(0, 1), kInternalArc));
  EXPECT_TRUE(rsg.HasArc(ix.GlobalId(0, 1), ix.GlobalId(0, 2), kInternalArc));
  // No I-arc skips an operation, and single-op transactions have none.
  EXPECT_EQ(rsg.KindsOf(ix.GlobalId(0, 0), ix.GlobalId(0, 2)), 0);
  EXPECT_EQ(rsg.arc_count(), 2u);  // no conflicts: I-arcs only
}

TEST(Rsg, AbsoluteSpecPushesToTransactionEnds) {
  // Under absolute atomicity, PushForward is the last op and PullBackward
  // the first op of the whole transaction.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y] w1[z]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] r1[y] w1[z]");
  const RelativeSerializationGraph rsg(*txns, *schedule, AbsoluteSpec(*txns));
  const OpIndexer& ix = rsg.indexer();
  const NodeId w1x = ix.GlobalId(0, 0);
  const NodeId w1z = ix.GlobalId(0, 2);
  const NodeId r2x = ix.GlobalId(1, 0);
  EXPECT_TRUE(rsg.HasArc(w1x, r2x, kDependencyArc));
  EXPECT_TRUE(rsg.HasArc(w1z, r2x, kPushForwardArc));  // end of T1 -> r2[x]
  EXPECT_TRUE(rsg.HasArc(w1x, r2x, kPullBackwardArc));  // r2[x] is its own
                                                        // txn start
  // r2[x] can still be pushed past T1's end (only one conflict pins it),
  // so the graph stays acyclic: S is equivalent to serial T1 T2.
  EXPECT_FALSE(HasCycle(rsg.graph()));
}

TEST(Rsg, PinnedInterleavingClosesCycleUnderAbsoluteSpec) {
  // T2 both depends on T1 (via x) and is depended on by T1 (via y), so
  // under absolute atomicity the F-arc from T1's end and the D-arc back
  // into T1 close a cycle: the classic non-serializable sandwich.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w2[y] r1[y]");
  ASSERT_TRUE(schedule.ok());
  const RelativeSerializationGraph rsg(*txns, *schedule, AbsoluteSpec(*txns));
  EXPECT_TRUE(HasCycle(rsg.graph()));
  // The same interleaving becomes acceptable once T1 exposes its gap.
  AtomicitySpec spec(*txns);
  spec.SetBreakpoint(0, 1, 0);
  spec.SetBreakpoint(1, 0, 0);
  const RelativeSerializationGraph relaxed(*txns, *schedule, spec);
  EXPECT_FALSE(HasCycle(relaxed.graph()));
}

TEST(Rsg, FullyRelaxedSpecAddsNoExtraArcs) {
  // With singleton units, PushForward/PullBackward are identities, so
  // F- and B-arcs coincide with D-arcs: the graph is I+D only, which is
  // always consistent with the schedule order and hence acyclic.
  Rng rng(71);
  for (int round = 0; round < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const RelativeSerializationGraph rsg(txns, schedule,
                                         FullyRelaxedSpec(txns));
    EXPECT_FALSE(HasCycle(rsg.graph()));
    for (const auto& [from, to] : rsg.graph().Edges()) {
      const std::uint8_t kinds = rsg.KindsOf(from, to);
      if ((kinds & (kPushForwardArc | kPullBackwardArc)) != 0) {
        // Any F/B arc must coincide with a D- or I-arc.
        EXPECT_NE(kinds & (kDependencyArc | kInternalArc), 0);
      }
    }
  }
}

TEST(Rsg, ArcsOfRelativelySerialScheduleConsistentWithOrder) {
  // Lemma 2's proof core: every arc of RSG(S) points forward in S when S
  // is relatively serial (hence the graph is acyclic).
  Rng rng(72);
  int verified = 0;
  for (int round = 0; round < 200 && verified < 30; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    if (!IsRelativelySerial(txns, schedule, spec)) continue;
    ++verified;
    const RelativeSerializationGraph rsg(txns, schedule, spec);
    for (const auto& [from, to] : rsg.graph().Edges()) {
      const Operation& u = txns.OpByGlobalId(from);
      const Operation& v = txns.OpByGlobalId(to);
      EXPECT_TRUE(schedule.Precedes(u, v))
          << ToString(txns, u) << " -> " << ToString(txns, v)
          << " [" << ArcKindsToString(rsg.KindsOf(from, to))
          << "] points backward in a relatively serial schedule";
    }
    EXPECT_FALSE(HasCycle(rsg.graph()));
  }
  EXPECT_GE(verified, 20);
}

TEST(Rsg, DArcsMatchDependsOnExactly) {
  Rng rng(73);
  WorkloadParams wp;
  wp.txn_count = 3;
  wp.object_count = 2;
  wp.read_ratio = 0.3;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const Schedule schedule = RandomSchedule(txns, &rng);
  const DependsOnRelation depends(txns, schedule);
  const RelativeSerializationGraph rsg(txns, schedule, AbsoluteSpec(txns));
  const OpIndexer& ix = rsg.indexer();
  for (const Operation& a : schedule.ops()) {
    for (const Operation& b : schedule.ops()) {
      if (a.txn == b.txn) continue;
      EXPECT_EQ(rsg.HasArc(ix.GlobalId(a), ix.GlobalId(b), kDependencyArc),
                depends.DependsOn(b, a))
          << ToString(txns, a) << " -> " << ToString(txns, b);
    }
  }
}

TEST(Rsg, IdenticalForConflictEquivalentSchedules) {
  // Theorem 1's first step: RSG depends only on the conflict-equivalence
  // class (same I-, D-, F-, B-arcs for equivalent schedules).
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[y]\nT2 = w2[x]\nT3 = r3[y]\n");
  auto a = ParseSchedule(*txns, "r1[x] w2[x] w1[y] r3[y]");
  auto b = ParseSchedule(*txns, "r1[x] w1[y] w2[x] r3[y]");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(ConflictEquivalent(*txns, *a, *b));
  Rng rng(74);
  WorkloadParams wp;  // just to reuse the rng idiom
  (void)wp;
  const AtomicitySpec spec = RandomSpec(*txns, 0.5, &rng);
  const RelativeSerializationGraph rsg_a(*txns, *a, spec);
  const RelativeSerializationGraph rsg_b(*txns, *b, spec);
  EXPECT_EQ(rsg_a.arc_count(), rsg_b.arc_count());
  for (const auto& [from, to] : rsg_a.graph().Edges()) {
    EXPECT_EQ(rsg_a.KindsOf(from, to), rsg_b.KindsOf(from, to));
  }
}

TEST(Rsg, PartialBuilderWithBothFamiliesMatchesFullRsg) {
  Rng rng(75);
  for (int round = 0; round < 25; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const RelativeSerializationGraph rsg(txns, schedule, spec);
    const Digraph partial = BuildPartialRsg(txns, schedule, spec, true, true);
    EXPECT_EQ(partial.edge_count(), rsg.arc_count());
    for (const auto& [from, to] : rsg.graph().Edges()) {
      EXPECT_TRUE(partial.HasEdge(from, to));
    }
    // Dropping arc families can only remove arcs (subgraphs).
    const Digraph f_only = BuildPartialRsg(txns, schedule, spec, true, false);
    const Digraph b_only = BuildPartialRsg(txns, schedule, spec, false, true);
    for (const auto& [from, to] : f_only.Edges()) {
      EXPECT_TRUE(partial.HasEdge(from, to));
    }
    for (const auto& [from, to] : b_only.Edges()) {
      EXPECT_TRUE(partial.HasEdge(from, to));
    }
  }
}

TEST(Rsg, ToStringListsArcsWithKinds) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x]");
  const RelativeSerializationGraph rsg(*txns, *schedule, AbsoluteSpec(*txns));
  const std::string dump = rsg.ToString(*txns);
  EXPECT_NE(dump.find("w1[x] -> r2[x]"), std::string::npos);
  EXPECT_NE(dump.find("D"), std::string::npos);
}

}  // namespace
}  // namespace relser
