// Tests for the Definition 1 / Definition 2 checkers beyond the paper's
// own examples: violation reporting, boundary interleavings, and the
// definitional containments on random inputs.
#include <gtest/gtest.h>

#include "core/checkers.h"
#include "model/text.h"
#include "spec/builders.h"
#include "spec/text.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(RelativelyAtomic, SerialSchedulesAlwaysQualify) {
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    const Schedule serial = RandomSerialSchedule(txns, &rng);
    EXPECT_TRUE(IsRelativelyAtomic(txns, serial, spec));
  }
}

TEST(RelativelyAtomic, InterleavingAtBreakpointAllowed) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[y]\n");
  auto spec = ParseAtomicitySpec(*txns, "Atomicity(T1,T2): r1[x] | w1[x]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] w2[y] w1[x]");
  EXPECT_TRUE(IsRelativelyAtomic(*txns, *schedule, *spec));
}

TEST(RelativelyAtomic, InterleavingInsideUnitRejected) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[y]\n");
  const AtomicitySpec spec(*txns);  // absolute
  auto schedule = ParseSchedule(*txns, "r1[x] w2[y] w1[x]");
  EXPECT_FALSE(IsRelativelyAtomic(*txns, *schedule, spec));
  const auto violation =
      FindRelativeAtomicityViolation(*txns, *schedule, spec);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->op.txn, 1u);
  EXPECT_EQ(violation->violated_txn, 0u);
  EXPECT_EQ(violation->unit, 0u);
  EXPECT_FALSE(violation->dependency_witness.has_value());
  EXPECT_NE(ViolationToString(*txns, *violation).find("w2[y]"),
            std::string::npos);
}

TEST(RelativelyAtomic, DirectionalityOfSpecsMatters) {
  // T1 may interleave into T2 but not vice versa.
  auto txns = ParseTransactionSet("T1 = w1[a]\nT2 = r2[x] w2[y]\n");
  AtomicitySpec spec(*txns);
  spec.SetBreakpoint(1, 0, 0);  // T2 exposes its gap to T1
  auto schedule = ParseSchedule(*txns, "r2[x] w1[a] w2[y]");
  EXPECT_TRUE(IsRelativelyAtomic(*txns, *schedule, spec));
  // Remove the breakpoint: the same interleaving violates.
  spec.ClearBreakpoint(1, 0, 0);
  EXPECT_FALSE(IsRelativelyAtomic(*txns, *schedule, spec));
}

TEST(RelativelyAtomic, OperationsOutsideSpanAreNotInterleaved) {
  // T2 entirely before and after T1's unit: never a violation.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[y]\nT3 = w3[z]\n");
  const AtomicitySpec spec(*txns);
  auto before = ParseSchedule(*txns, "w2[y] r1[x] w1[x] w3[z]");
  EXPECT_TRUE(IsRelativelyAtomic(*txns, *before, spec));
}

TEST(RelativelySerial, IndependentInterleavingAllowedInsideUnit) {
  // w2[y] has no dependency with T1's unit: Definition 2 admits it even
  // though Definition 1 rejects it.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[y]\n");
  const AtomicitySpec spec(*txns);
  auto schedule = ParseSchedule(*txns, "r1[x] w2[y] w1[x]");
  EXPECT_FALSE(IsRelativelyAtomic(*txns, *schedule, spec));
  EXPECT_TRUE(IsRelativelySerial(*txns, *schedule, spec));
}

TEST(RelativelySerial, DependentInterleavingRejected) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[x]\n");
  const AtomicitySpec spec(*txns);
  auto schedule = ParseSchedule(*txns, "r1[x] w2[x] w1[x]");
  const DependsOnRelation depends(*txns, *schedule);
  const auto violation =
      FindRelativeSerialityViolation(*txns, *schedule, spec, depends);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->op.txn, 1u);
  ASSERT_TRUE(violation->dependency_witness.has_value());
  // The witness is a unit operation related to w2[x].
  EXPECT_EQ(violation->dependency_witness->txn, 0u);
}

TEST(RelativelySerial, ViceVersaDirectionDetected) {
  // The interleaved op *affects* a later unit op (but depends on nothing
  // before it): still a violation ("and vice versa" in Definition 2).
  auto txns = ParseTransactionSet("T1 = r1[y] w1[x]\nT2 = w2[x]\n");
  const AtomicitySpec spec(*txns);
  auto schedule = ParseSchedule(*txns, "r1[y] w2[x] w1[x]");
  const DependsOnRelation depends(*txns, *schedule);
  const Operation w2x = txns->txn(1).op(0);
  const Operation w1x = txns->txn(0).op(1);
  EXPECT_TRUE(depends.DependsOn(w1x, w2x));
  EXPECT_FALSE(depends.DependsOn(w2x, txns->txn(0).op(0)));
  EXPECT_FALSE(IsRelativelySerial(*txns, *schedule, spec));
}

TEST(RelativelySerial, RelativeAtomicityImpliesRelativeSeriality) {
  Rng rng(2);
  for (int round = 0; round < 50; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    if (IsRelativelyAtomic(txns, schedule, spec)) {
      EXPECT_TRUE(IsRelativelySerial(txns, schedule, spec));
    }
  }
}

TEST(RelativelySerial, FullyRelaxedSpecAcceptsEverything) {
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.object_count = 2;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec relaxed = FullyRelaxedSpec(txns);
    const Schedule schedule = RandomSchedule(txns, &rng);
    EXPECT_TRUE(IsRelativelyAtomic(txns, schedule, relaxed));
    EXPECT_TRUE(IsRelativelySerial(txns, schedule, relaxed));
  }
}

TEST(RelativelySerial, MorePermissiveSpecAcceptsMore) {
  // If spec A is at least as permissive as spec B, every B-relatively-
  // serial schedule is A-relatively-serial.
  Rng rng(4);
  for (int round = 0; round < 30; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec tight = RandomSpec(txns, 0.3, &rng);
    AtomicitySpec loose = tight;
    // Add extra breakpoints to make `loose` strictly more permissive.
    for (TxnId i = 0; i < txns.txn_count(); ++i) {
      for (TxnId j = 0; j < txns.txn_count(); ++j) {
        if (i == j || txns.txn(i).size() < 2) continue;
        for (std::uint32_t g = 0; g + 1 < txns.txn(i).size(); ++g) {
          if (rng.Bernoulli(0.4)) loose.SetBreakpoint(i, j, g);
        }
      }
    }
    ASSERT_TRUE(loose.AtLeastAsPermissiveAs(tight));
    const Schedule schedule = RandomSchedule(txns, &rng);
    if (IsRelativelySerial(txns, schedule, tight)) {
      EXPECT_TRUE(IsRelativelySerial(txns, schedule, loose));
    }
    if (IsRelativelyAtomic(txns, schedule, tight)) {
      EXPECT_TRUE(IsRelativelyAtomic(txns, schedule, loose));
    }
  }
}

TEST(Violations, FirstViolationIsEarliestInScheduleOrder) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x]\nT2 = w2[y]\nT3 = w3[z]\n");
  const AtomicitySpec spec(*txns);
  // Both w2[y] and w3[z] are interleaved; w2[y] comes first.
  auto schedule = ParseSchedule(*txns, "r1[x] w2[y] w3[z] w1[x]");
  const auto violation =
      FindRelativeAtomicityViolation(*txns, *schedule, spec);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->op.txn, 1u);
}

}  // namespace
}  // namespace relser
