// Tests for the concurrent admission front-end (sched/admitter.h):
// multi-client stress with soundness replay, decision parity against a
// serial feed of the same operation stream, TxnVerdict semantics, and
// the Probe/SubmitDetached fast path.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "model/schedule.h"
#include "model/text.h"
#include "sched/admitter.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

// Round-robin interleaving of all transactions' operations: a canonical
// single-thread feed order that respects each transaction's program
// order (the admitter's feeding contract).
std::vector<Operation> RoundRobinFeed(const TransactionSet& txns) {
  std::vector<Operation> feed;
  bool progress = true;
  for (std::uint32_t i = 0; progress; ++i) {
    progress = false;
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      if (i < txns.txn(t).size()) {
        feed.push_back(txns.txn(t).op(i));
        progress = true;
      }
    }
  }
  return feed;
}

// The admitter's decision policy, applied serially: first rejection
// kills the transaction, later operations auto-reject.
std::vector<bool> SerialDecisions(const TransactionSet& txns,
                                  const AtomicitySpec& spec,
                                  const std::vector<Operation>& feed) {
  OnlineRsrChecker checker(txns, spec);
  std::vector<bool> dead(txns.txn_count(), false);
  std::vector<bool> decisions;
  decisions.reserve(feed.size());
  for (const Operation& op : feed) {
    bool ok = false;
    if (!dead[op.txn]) {
      ok = checker.TryAppend(op);
      if (!ok) dead[op.txn] = true;
    }
    decisions.push_back(ok);
  }
  return decisions;
}

TEST(AdmitterTest, SingleClientMatchesSerialFeed) {
  Rng rng(0xADA1);
  WorkloadParams wp;
  wp.txn_count = 8;
  wp.min_ops_per_txn = 3;
  wp.max_ops_per_txn = 6;
  wp.object_count = 3;  // small: force conflicts and rejections
  wp.read_ratio = 0.4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = AbsoluteSpec(txns);
  const std::vector<Operation> feed = RoundRobinFeed(txns);
  const std::vector<bool> expected = SerialDecisions(txns, spec, feed);

  AdmitterOptions options;
  options.record_log = true;
  ConcurrentAdmitter admitter(txns, spec, options);
  std::vector<bool> got;
  got.reserve(feed.size());
  for (const Operation& op : feed) got.push_back(admitter.SubmitAndWait(op));
  admitter.Stop();

  ASSERT_EQ(got.size(), expected.size());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "op " << i;
    rejected += got[i] ? 0u : 1u;
    EXPECT_EQ(admitter.OpVerdict(feed[i]),
              got[i] ? ConcurrentAdmitter::Verdict::kAccepted
                     : ConcurrentAdmitter::Verdict::kRejected);
  }
  EXPECT_GT(rejected, 0u) << "workload too easy to exercise rejection";
  EXPECT_EQ(admitter.accepted() + admitter.rejected(), feed.size());
}

TEST(AdmitterTest, EightClientStressIsSoundUnderReplay) {
  Rng rng(0xADA2);
  WorkloadParams wp;
  wp.txn_count = 64;
  wp.min_ops_per_txn = 3;
  wp.max_ops_per_txn = 8;
  wp.object_count = 16;
  wp.read_ratio = 0.5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);

  AdmitterOptions options;
  options.record_log = true;
  options.queue_capacity = 64;  // small ring: exercise back-pressure
  options.max_batch = 8;
  ConcurrentAdmitter admitter(txns, spec, options);

  constexpr std::size_t kClients = 8;
  std::vector<std::uint8_t> committed(txns.txn_count(), 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (TxnId t = static_cast<TxnId>(c); t < txns.txn_count();
           t = static_cast<TxnId>(t + kClients)) {
        for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
          const Operation& op = txns.txn(t).op(i);
          if (admitter.Probe(op)) {
            admitter.SubmitDetached(op);
          } else if (!admitter.SubmitAndWait(op)) {
            break;  // transaction dead; stop submitting
          }
        }
        committed[t] = admitter.TxnVerdict(t) ? 1 : 0;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  admitter.Stop();

  // Everything the concurrent core admitted must re-admit through a
  // fresh serial checker in admission order.
  OnlineRsrChecker replay(txns, spec);
  const std::vector<Operation>& log = admitter.admitted_log();
  EXPECT_EQ(log.size(), admitter.accepted());
  for (std::size_t i = 0; i < log.size(); ++i) {
    ASSERT_TRUE(replay.TryAppend(log[i])) << "admitted op " << i
                                          << " is not serially admissible";
  }

  // A committed transaction is one whose submitted prefix was fully
  // accepted; it must appear in the log with consecutive indices 0..k.
  std::vector<std::uint32_t> admitted_ops(txns.txn_count(), 0);
  for (const Operation& op : log) {
    EXPECT_EQ(op.index, admitted_ops[op.txn]) << "gap in admitted prefix";
    ++admitted_ops[op.txn];
  }
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    if (committed[t] != 0) {
      EXPECT_GT(admitted_ops[t], 0u) << "txn " << t;
    }
  }
}

TEST(AdmitterTest, TxnVerdictReportsRejectedTransactions) {
  // The paper's sandwich: T2 runs entirely inside T1, touching both of
  // T1's objects; under absolute atomicity the final r1[y] must reject.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  const AtomicitySpec spec = AbsoluteSpec(*txns);

  ConcurrentAdmitter admitter(*txns, spec);
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));  // w1[x]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));  // r2[x]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(1)));  // w2[y]
  // r1[y] closes the sandwich cycle under absolute atomicity: reject.
  EXPECT_FALSE(admitter.SubmitAndWait(txns->txn(0).op(1)));
  EXPECT_FALSE(admitter.TxnVerdict(0));
  EXPECT_TRUE(admitter.TxnVerdict(1));
  admitter.Stop();
  EXPECT_EQ(admitter.rejected(), 1u);
}

TEST(AdmitterTest, DetachedSubmissionsResolveThroughTxnVerdict) {
  Rng rng(0xADA3);
  WorkloadParams wp;
  wp.txn_count = 4;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 4;
  wp.object_count = 64;  // sparse: nearly everything is conflict-free
  wp.read_ratio = 0.5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = AbsoluteSpec(txns);

  ConcurrentAdmitter admitter(txns, spec);
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
      admitter.SubmitDetached(txns.txn(t).op(i));
    }
  }
  admitter.Flush();
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    // Sparse objects + absolute spec on disjoint data: all should commit.
    EXPECT_TRUE(admitter.TxnVerdict(t)) << "txn " << t;
  }
  admitter.Stop();
  EXPECT_EQ(admitter.accepted(), admitter.checker().executed_count());
  EXPECT_GT(admitter.fast_path_accepts(), 0u);
}

TEST(AdmitterTest, FastPathDecisionsMatchSlowPath) {
  // Sparse workload where most traffic qualifies for TryAppendIsolated:
  // the admitter's decisions must still match the slow-path-only serial
  // reference exactly (the fast path is a shortcut, not a relaxation).
  Rng rng(0xADA4);
  WorkloadParams wp;
  wp.txn_count = 12;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 6;
  wp.object_count = 48;
  wp.read_ratio = 0.6;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
  const std::vector<Operation> feed = RoundRobinFeed(txns);
  const std::vector<bool> expected = SerialDecisions(txns, spec, feed);

  ConcurrentAdmitter admitter(txns, spec);
  std::vector<bool> got;
  got.reserve(feed.size());
  for (const Operation& op : feed) got.push_back(admitter.SubmitAndWait(op));
  admitter.Stop();

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "op " << i;
  }
  EXPECT_GT(admitter.fast_path_accepts(), 0u)
      << "sparse workload should exercise TryAppendIsolated";
}

}  // namespace
}  // namespace relser
