// Tests for the concurrent admission front-end (sched/admitter.h):
// multi-client stress with soundness replay, decision parity against a
// serial feed of the same operation stream (including the abort-and-
// cascade-on-reject policy), TxnVerdict semantics, and the
// Probe/SubmitDetached fast path.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "model/schedule.h"
#include "model/text.h"
#include "sched/admitter.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

// Round-robin interleaving of all transactions' operations: a canonical
// single-thread feed order that respects each transaction's program
// order (the admitter's feeding contract).
std::vector<Operation> RoundRobinFeed(const TransactionSet& txns) {
  std::vector<Operation> feed;
  bool progress = true;
  for (std::uint32_t i = 0; progress; ++i) {
    progress = false;
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      if (i < txns.txn(t).size()) {
        feed.push_back(txns.txn(t).op(i));
        progress = true;
      }
    }
  }
  return feed;
}

// The admitter's decision policy, applied serially: a rejection aborts
// the transaction (its accepted prefix is withdrawn exactly) and
// cascade-aborts every live transaction that read one of its writes;
// operations of dead transactions auto-reject; a transaction commits —
// and becomes immune — when its last operation is accepted.
std::vector<bool> SerialDecisions(const TransactionSet& txns,
                                  const AtomicitySpec& spec,
                                  const std::vector<Operation>& feed) {
  constexpr TxnId kNone = static_cast<TxnId>(-1);
  enum : std::uint8_t { kLive, kCommitted, kDead };
  OnlineRsrChecker checker(txns, spec);
  std::vector<std::uint8_t> state(txns.txn_count(), kLive);
  std::vector<TxnId> last_writer(txns.object_count(), kNone);
  std::vector<std::vector<TxnId>> readers_of(txns.txn_count());

  const auto kill = [&](TxnId root) {
    std::vector<TxnId> stack{root};
    while (!stack.empty()) {
      const TxnId t = stack.back();
      stack.pop_back();
      if (state[t] != kLive) continue;
      state[t] = kDead;
      if (checker.TxnHasExecuted(t)) checker.RemoveTransactionExact(t);
      for (const TxnId reader : readers_of[t]) {
        if (state[reader] == kLive) stack.push_back(reader);
      }
      readers_of[t].clear();
    }
    for (ObjectId o = 0; o < static_cast<ObjectId>(last_writer.size()); ++o) {
      if (last_writer[o] == kNone || state[last_writer[o]] != kDead) continue;
      const std::size_t gid = checker.FrontierWriterGid(o);
      last_writer[o] = gid == OnlineRsrChecker::kNoOp
                           ? kNone
                           : txns.OpByGlobalId(gid).txn;
    }
  };

  std::vector<bool> decisions;
  decisions.reserve(feed.size());
  for (const Operation& op : feed) {
    if (state[op.txn] != kLive) {
      decisions.push_back(false);
      continue;
    }
    if (checker.TryAppend(op).ok()) {
      if (op.is_write()) {
        last_writer[op.object] = op.txn;
      } else {
        const TxnId writer = last_writer[op.object];
        if (writer != kNone && writer != op.txn && state[writer] == kLive) {
          readers_of[writer].push_back(op.txn);
        }
      }
      if (op.index + 1 == txns.txn(op.txn).size()) state[op.txn] = kCommitted;
      decisions.push_back(true);
    } else {
      decisions.push_back(false);
      kill(op.txn);
    }
  }
  return decisions;
}

TEST(AdmitterTest, SingleClientMatchesSerialFeed) {
  Rng rng(0xADA1);
  WorkloadParams wp;
  wp.txn_count = 8;
  wp.min_ops_per_txn = 3;
  wp.max_ops_per_txn = 6;
  wp.object_count = 3;  // small: force conflicts and rejections
  wp.read_ratio = 0.4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = AbsoluteSpec(txns);
  const std::vector<Operation> feed = RoundRobinFeed(txns);
  const std::vector<bool> expected = SerialDecisions(txns, spec, feed);

  AdmitterOptions options;
  options.record_log = true;
  ConcurrentAdmitter admitter(txns, spec, options);
  std::vector<bool> got;
  got.reserve(feed.size());
  for (const Operation& op : feed) {
    got.push_back(admitter.SubmitAndWait(op).ok());
  }
  admitter.Stop();

  ASSERT_EQ(got.size(), expected.size());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "op " << i;
    rejected += got[i] ? 0u : 1u;
    ASSERT_TRUE(admitter.OpOutcome(feed[i]).has_value());
    EXPECT_EQ(*admitter.OpOutcome(feed[i]) == AdmitOutcome::kAccept, got[i]);
  }
  EXPECT_GT(rejected, 0u) << "workload too easy to exercise rejection";
  EXPECT_EQ(admitter.accepted() + admitter.rejected(), feed.size());
}

TEST(AdmitterTest, EightClientStressIsSoundUnderReplay) {
  Rng rng(0xADA2);
  WorkloadParams wp;
  wp.txn_count = 64;
  wp.min_ops_per_txn = 3;
  wp.max_ops_per_txn = 8;
  wp.object_count = 16;
  wp.read_ratio = 0.5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);

  AdmitterOptions options;
  options.record_log = true;
  options.queue_capacity = 64;  // small ring: exercise back-pressure
  options.max_batch = 8;
  ConcurrentAdmitter admitter(txns, spec, options);

  constexpr std::size_t kClients = 8;
  std::vector<std::uint8_t> committed(txns.txn_count(), 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Backoff backoff(0xB0FF0000ULL + c);
      for (TxnId t = static_cast<TxnId>(c); t < txns.txn_count();
           t = static_cast<TxnId>(t + kClients)) {
        for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
          const Operation& op = txns.txn(t).op(i);
          if (admitter.Probe(op)) {
            admitter.SubmitDetached(op);
          } else if (!admitter.SubmitWithBackoff(op, backoff)) {
            break;  // transaction dead; stop submitting
          }
        }
        committed[t] = admitter.TxnVerdict(t) ? 1 : 0;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  admitter.Stop();

  // Everything that survived in the checker (committed and live work;
  // aborted transactions were withdrawn) must re-admit through a fresh
  // serial checker in admission order, and so must the committed
  // prefix on its own — the soundness gate the fault bench hard-fails.
  OnlineRsrChecker replay(txns, spec);
  for (const std::size_t gid : admitter.checker().feed_log()) {
    ASSERT_TRUE(replay.TryAppend(txns.OpByGlobalId(gid)))
        << "surviving op gid " << gid << " is not serially admissible";
  }
  OnlineRsrChecker committed_replay(txns, spec);
  const std::vector<Operation> committed_log = admitter.CommittedLog();
  for (std::size_t i = 0; i < committed_log.size(); ++i) {
    ASSERT_TRUE(committed_replay.TryAppend(committed_log[i]))
        << "committed op " << i << " is not serially admissible";
  }

  // Admission respects program order, so the full admitted log (which
  // also keeps operations of since-aborted transactions) has each
  // transaction's indices consecutive from 0.
  std::vector<std::uint32_t> admitted_ops(txns.txn_count(), 0);
  for (const Operation& op : admitter.admitted_log()) {
    EXPECT_EQ(op.index, admitted_ops[op.txn]) << "gap in admitted prefix";
    ++admitted_ops[op.txn];
  }
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    if (committed[t] != 0) {
      EXPECT_TRUE(admitter.TxnCommitted(t)) << "txn " << t;
      EXPECT_EQ(admitted_ops[t], txns.txn(t).size()) << "txn " << t;
    }
  }
}

TEST(AdmitterTest, TxnVerdictReportsRejectedTransactions) {
  // The paper's sandwich: T2 runs entirely inside T1, touching both of
  // T1's objects; under absolute atomicity the final r1[y] must reject.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  const AtomicitySpec spec = AbsoluteSpec(*txns);

  ConcurrentAdmitter admitter(*txns, spec);
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));  // w1[x]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));  // r2[x]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(1)));  // w2[y]
  // r1[y] closes the sandwich cycle under absolute atomicity: reject.
  const AdmitResult rejected = admitter.SubmitAndWait(txns->txn(0).op(1));
  EXPECT_EQ(rejected, AdmitOutcome::kReject);
  EXPECT_EQ(admitter.TxnVerdict(0), AdmitOutcome::kAborted);
  EXPECT_TRUE(admitter.TxnVerdict(1));
  admitter.Stop();
  EXPECT_EQ(admitter.rejected(), 1u);
  // T1's rejection aborted it and withdrew w1[x] exactly; T2 survives
  // whole. T2's r2[x] had read T1's uncommitted write, but T2 committed
  // before the abort — an unrecoverable read, counted not cascaded.
  EXPECT_EQ(admitter.checker().executed_count(), 2u);
  EXPECT_TRUE(admitter.TxnCommitted(1));
  EXPECT_EQ(admitter.unrecoverable_reads(), 1u);
}

TEST(AdmitterTest, DetachedSubmissionsResolveThroughTxnVerdict) {
  Rng rng(0xADA3);
  WorkloadParams wp;
  wp.txn_count = 4;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 4;
  wp.object_count = 64;  // sparse: nearly everything is conflict-free
  wp.read_ratio = 0.5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = AbsoluteSpec(txns);

  ConcurrentAdmitter admitter(txns, spec);
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
      admitter.SubmitDetached(txns.txn(t).op(i));
    }
  }
  admitter.Flush();
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    // Sparse objects + absolute spec on disjoint data: all should commit.
    EXPECT_TRUE(admitter.TxnVerdict(t)) << "txn " << t;
  }
  admitter.Stop();
  EXPECT_EQ(admitter.accepted(), admitter.checker().executed_count());
  EXPECT_GT(admitter.fast_path_accepts(), 0u);
}

TEST(AdmitterTest, FastPathDecisionsMatchSlowPath) {
  // Sparse workload where most traffic qualifies for TryAppendIsolated:
  // the admitter's decisions must still match the slow-path-only serial
  // reference exactly (the fast path is a shortcut, not a relaxation).
  Rng rng(0xADA4);
  WorkloadParams wp;
  wp.txn_count = 12;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 6;
  wp.object_count = 48;
  wp.read_ratio = 0.6;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
  const std::vector<Operation> feed = RoundRobinFeed(txns);
  const std::vector<bool> expected = SerialDecisions(txns, spec, feed);

  ConcurrentAdmitter admitter(txns, spec);
  std::vector<bool> got;
  got.reserve(feed.size());
  for (const Operation& op : feed) {
    got.push_back(admitter.SubmitAndWait(op).ok());
  }
  admitter.Stop();

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "op " << i;
  }
  EXPECT_GT(admitter.fast_path_accepts(), 0u)
      << "sparse workload should exercise TryAppendIsolated";
}

}  // namespace
}  // namespace relser
