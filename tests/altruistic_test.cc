// Tests for the altruistic-locking scheduler [SGMA87]: donation
// mechanics, wake restrictions, the certification safety net, and the
// concurrency benefit over strict 2PL for long transactions.
#include <gtest/gtest.h>

#include "model/text.h"
#include "sched/altruistic.h"
#include "sched/engine.h"
#include "sched/lock_based.h"
#include "sched/verify.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace relser {
namespace {

TEST(Altruistic, DonatesAfterLastAccess) {
  // T1 = w1[a] w1[b]: after w1[a] executes, `a` is never touched again,
  // so it is donated immediately and T2 may take it before T1 commits.
  auto txns = ParseTransactionSet("T1 = w1[a] w1[b]\nT2 = w2[a]\n");
  AltruisticScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_GE(scheduler.donations(), 1u);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.wake_grants(), 1u);
}

TEST(Altruistic, PlainLockConflictBlocks) {
  // T1 touches `a` again later: no donation, T2 must wait.
  auto txns = ParseTransactionSet("T1 = w1[a] w1[b] r1[a]\nT2 = w2[a]\n");
  AltruisticScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kRetry);
  // After T1 commits the lock clears.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(2)), AdmitOutcome::kAccept);
  scheduler.OnCommit(0);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
}

TEST(Altruistic, WakeRestrictionBlocksOutsideObjects) {
  // T2 enters T1's wake via donated `a`, then wants `c` which T1 still
  // (statically) accesses and has not donated: blocked.
  auto txns = ParseTransactionSet(
      "T1 = w1[a] w1[b] w1[c]\nT2 = r2[a] w2[c]\n");
  AltruisticScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.wake_grants(), 1u);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(1)), AdmitOutcome::kRetry);
  // Once T1 passes its last access of c (and commits), T2 proceeds.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(2)), AdmitOutcome::kAccept);
  scheduler.OnCommit(0);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(1)), AdmitOutcome::kAccept);
}

TEST(Altruistic, CertifierRejectsTheDonationChainCounterexample) {
  // The three-transaction trap that defeats purely local wake rules:
  //   T4 = w[x2] w[x0]   (donates x2 immediately: a donor)
  //   T3 = r[x0] ... w[x2]  (reads x0, later takes T4's donated x2)
  //   T2 = w[x0]         (takes x0 through T3's donation)
  // Execution order w4[x2], r3[x0], (donate), w2[x0], w3[x2], w4[x0]
  // orders T4 < T3 (x2), T3 < T2 (x0), T2 < T4 (x0): a cycle no local
  // rule catches, because T3's debt to T4 arises only after T3 already
  // donated to T2. The certifier must abort the closing request.
  auto txns = ParseTransactionSet(
      "T1 = w1[x2] w1[x0]\n"
      "T2 = r2[x0] w2[x2]\n"
      "T3 = w3[x0]\n");
  AltruisticScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  // T2 finished with x0 -> donated; T3 writes it through the donation.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(2).op(0)), AdmitOutcome::kAccept);
  scheduler.OnCommit(2);
  // T2 takes T1's donated x2 (T2 now after T1... but T3 after T2 and
  // T3's write of x0 precedes T1's upcoming w1[x0]).
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(1)), AdmitOutcome::kAccept);
  scheduler.OnCommit(1);
  // T1's w1[x0] must now serialize T1 after T3 and after T2 — but T2
  // took T1's donation (T1 before T2): cycle. Certifier aborts T1.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAborted);
  EXPECT_EQ(scheduler.certification_aborts(), 1u);
}

TEST(Altruistic, AlwaysConflictSerializableOnRandomWorkloads) {
  Rng rng(0x5A5A);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(5);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    wp.object_count = 2 + rng.UniformIndex(6);
    wp.read_ratio = 0.4;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = AbsoluteSpec(txns);
    AltruisticScheduler scheduler(txns);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 200000;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed) << "round " << round;
    const RunVerification verification =
        VerifyRun(txns, spec, result, Guarantee::kConflictSerializable);
    EXPECT_TRUE(verification.guarantee_held) << "round " << round;
  }
}

TEST(Altruistic, BeatsStrict2PLForLongDonorWorkloads) {
  // One long transaction sweeping many objects with think time; short
  // single-object transactions behind it. Altruistic locking's donations
  // should cut the short transactions' latency sharply versus 2PL.
  const std::size_t kSteps = 16;
  TransactionSet txns;
  txns.AddObjects(kSteps);
  Transaction* long_txn = txns.AddTransaction();
  for (std::size_t k = 0; k < kSteps; ++k) {
    long_txn->Read(static_cast<ObjectId>(k));
    long_txn->Write(static_cast<ObjectId>(k));
  }
  Rng rng(123);
  for (int s = 0; s < 8; ++s) {
    // Shorts touch objects from the long transaction's early sweep, which
    // strict 2PL keeps locked until the long transaction commits but
    // altruistic locking has already donated.
    Transaction* txn = txns.AddTransaction();
    const auto object = static_cast<ObjectId>(rng.UniformIndex(kSteps / 4));
    txn->Read(object);
    txn->Write(object);
  }
  SimParams sp;
  sp.seed = 9;
  sp.think_time.assign(txns.txn_count(), 0);
  sp.think_time[0] = 2;
  // Shorts arrive once the long transaction is well past their objects.
  sp.start_tick.assign(txns.txn_count(), 0);
  for (TxnId t = 1; t < txns.txn_count(); ++t) {
    sp.start_tick[t] = 30 + 5 * t;
  }

  auto mean_short_latency = [&](Scheduler* scheduler) {
    const SimResult result = RunSimulation(txns, scheduler, sp);
    EXPECT_TRUE(result.metrics.completed);
    double total = 0;
    for (TxnId t = 1; t < txns.txn_count(); ++t) {
      total += static_cast<double>(result.latency[t]);
    }
    return total / static_cast<double>(txns.txn_count() - 1);
  };
  Strict2PLScheduler strict;
  AltruisticScheduler altruistic(txns);
  const double lat_2pl = mean_short_latency(&strict);
  const double lat_alt = mean_short_latency(&altruistic);
  EXPECT_LT(lat_alt, lat_2pl);
  EXPECT_GT(altruistic.donations(), 0u);
}

}  // namespace
}  // namespace relser
