// Tests for the text notation: transaction-set / schedule / operation
// parsing, round-trips through the printers, and error reporting.
#include <gtest/gtest.h>

#include "model/text.h"
#include "spec/text.h"

namespace relser {
namespace {

TEST(ParseTransactionSet, ParsesPaperNotation) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x] w1[z] r1[y]\n"
      "T2 = r2[y] w2[y] r2[x]\n");
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->txn_count(), 2u);
  EXPECT_EQ(txns->txn(0).size(), 4u);
  EXPECT_EQ(txns->txn(1).size(), 3u);
  EXPECT_EQ(txns->object_count(), 3u);
  EXPECT_EQ(ToString(*txns, txns->txn(0)), "r1[x]w1[x]w1[z]r1[y]");
}

TEST(ParseTransactionSet, WhitespaceIsOptional) {
  auto txns = ParseTransactionSet("T1=r1[x]w1[y]\nT2=w2[x]");
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->txn(0).size(), 2u);
}

TEST(ParseTransactionSet, LabelsAreOptional) {
  auto txns = ParseTransactionSet("r1[x] w1[x]\nr2[x]\n");
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->txn_count(), 2u);
}

TEST(ParseTransactionSet, SemicolonSeparatesTransactions) {
  auto txns = ParseTransactionSet("r1[x]; w2[x]; r3[y]");
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->txn_count(), 3u);
}

TEST(ParseTransactionSet, RejectsOutOfOrderLabels) {
  auto txns = ParseTransactionSet("T2 = r2[x]\nT1 = r1[x]\n");
  ASSERT_FALSE(txns.ok());
  EXPECT_EQ(txns.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseTransactionSet, RejectsForeignOperationNumber) {
  auto txns = ParseTransactionSet("T1 = r1[x] w2[x]\n");
  EXPECT_FALSE(txns.ok());
}

TEST(ParseTransactionSet, RejectsMalformedTokens) {
  EXPECT_FALSE(ParseTransactionSet("T1 = x1[r]").ok());   // bad kind
  EXPECT_FALSE(ParseTransactionSet("T1 = r[x]").ok());    // no number
  EXPECT_FALSE(ParseTransactionSet("T1 = r0[x]").ok());   // 0 is invalid
  EXPECT_FALSE(ParseTransactionSet("T1 = r1[x").ok());    // no ']'
  EXPECT_FALSE(ParseTransactionSet("T1 = r1 x]").ok());   // no '['
  EXPECT_FALSE(ParseTransactionSet("T1 = r1[]").ok());    // empty name
  EXPECT_FALSE(ParseTransactionSet("").ok());             // no txns
  EXPECT_FALSE(ParseTransactionSet("T1 r1[x]").ok());     // missing '='
}

TEST(ParseTransactionSet, ObjectNamesAllowAlnumUnderscore) {
  auto txns = ParseTransactionSet("T1 = r1[acct_01] w1[f0_x]");
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(txns->ObjectName(0), "acct_01");
}

TEST(ParseSchedule, AcceptsCompletePermutation) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[x]\n");
  ASSERT_TRUE(txns.ok());
  auto schedule = ParseSchedule(*txns, "r1[x] w2[x] w1[x]");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(ToString(*txns, *schedule), "r1[x]w2[x]w1[x]");
}

TEST(ParseSchedule, RejectsIncompleteSchedule) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[x]\n");
  EXPECT_FALSE(ParseSchedule(*txns, "r1[x] w2[x]").ok());
}

TEST(ParseSchedule, RejectsOutOfProgramOrder) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[y]\nT2 = w2[x]\n");
  EXPECT_FALSE(ParseSchedule(*txns, "w1[y] r1[x] w2[x]").ok());
}

TEST(ParseSchedule, RejectsUnknownOperation) {
  auto txns = ParseTransactionSet("T1 = r1[x]\n");
  EXPECT_FALSE(ParseSchedule(*txns, "w1[x]").ok());
  EXPECT_FALSE(ParseSchedule(*txns, "r2[x]").ok());
  EXPECT_FALSE(ParseSchedule(*txns, "r1[z]").ok());
}

TEST(ParseSchedule, HandlesRepeatedIdenticalOperations) {
  // A transaction may read the same object twice; tokens resolve to
  // occurrences in program order.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[y] r1[x]\nT2 = w2[y]\n");
  ASSERT_TRUE(txns.ok());
  auto schedule = ParseSchedule(*txns, "r1[x] w2[y] w1[y] r1[x]");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->op(0).index, 0u);
  EXPECT_EQ(schedule->op(3).index, 2u);
}

TEST(ParseOperationList, PartialListsAllowed) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x] w1[z]\n");
  auto ops = ParseOperationList(*txns, "w1[x] w1[z]");
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(ops->size(), 2u);
  EXPECT_EQ((*ops)[0].index, 1u);
}

TEST(SpecText, ParsesUnitsAndDefaults) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x] w1[z]\nT2 = r2[x]\n");
  ASSERT_TRUE(txns.ok());
  auto spec = ParseAtomicitySpec(*txns,
                                 "Atomicity(T1,T2): r1[x] w1[x] | w1[z]\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->UnitCount(0, 1), 2u);
  EXPECT_TRUE(spec->HasBreakpoint(0, 1, 1));
  EXPECT_FALSE(spec->HasBreakpoint(0, 1, 0));
  // The unmentioned pair defaults to a single unit.
  EXPECT_EQ(spec->UnitCount(1, 0), 1u);
}

TEST(SpecText, CommentsAndBlankLinesIgnored) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x]\n");
  auto spec = ParseAtomicitySpec(*txns,
                                 "# a comment\n"
                                 "\n"
                                 "Atomicity(T1,T2): r1[x] | w1[x]\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->HasBreakpoint(0, 1, 0));
}

TEST(SpecText, RejectsBadHeaders) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x]\n");
  EXPECT_FALSE(ParseAtomicitySpec(*txns, "Atomic(T1,T2): r1[x]w1[x]").ok());
  EXPECT_FALSE(ParseAtomicitySpec(*txns, "Atomicity(T1,T1): r1[x]w1[x]").ok());
  EXPECT_FALSE(ParseAtomicitySpec(*txns, "Atomicity(T1,T9): r1[x]w1[x]").ok());
  EXPECT_FALSE(ParseAtomicitySpec(*txns, "Atomicity(T0,T2): r1[x]w1[x]").ok());
  EXPECT_FALSE(ParseAtomicitySpec(*txns, "Atomicity(T1 T2): r1[x]w1[x]").ok());
}

TEST(SpecText, RejectsIncompleteOrForeignUnits) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x]\n");
  // Missing an operation of T1.
  EXPECT_FALSE(ParseAtomicitySpec(*txns, "Atomicity(T1,T2): r1[x]").ok());
  // Operation of the wrong transaction.
  EXPECT_FALSE(
      ParseAtomicitySpec(*txns, "Atomicity(T1,T2): r1[x] | r2[x]").ok());
  // Out of program order.
  EXPECT_FALSE(
      ParseAtomicitySpec(*txns, "Atomicity(T1,T2): w1[x] | r1[x]").ok());
  // Empty unit.
  EXPECT_FALSE(
      ParseAtomicitySpec(*txns, "Atomicity(T1,T2): r1[x] w1[x] |").ok());
}

TEST(SpecText, RoundTripsThroughPrinter) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x] w1[z] r1[y]\nT2 = r2[y] w2[y] r2[x]\n");
  const std::string spec_text =
      "Atomicity(T1,T2): r1[x]w1[x] | w1[z]r1[y]\n"
      "Atomicity(T2,T1): r2[y] | w2[y]r2[x]\n";
  auto spec = ParseAtomicitySpec(*txns, spec_text);
  ASSERT_TRUE(spec.ok());
  const std::string printed = ToString(*txns, *spec);
  auto reparsed = ParseAtomicitySpec(*txns, printed);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*spec, *reparsed);
}

TEST(SpecText, AtomicityLineShowsUnits) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x] w1[z]\nT2 = r2[x]\n");
  auto spec = ParseAtomicitySpec(*txns,
                                 "Atomicity(T1,T2): r1[x] | w1[x] w1[z]\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(AtomicityLineToString(*txns, *spec, 0, 1),
            "Atomicity(T1,T2): r1[x] | w1[x]w1[z]");
}

}  // namespace
}  // namespace relser
