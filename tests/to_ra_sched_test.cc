// Tests for the timestamp-ordering and relatively-atomic schedulers.
#include <gtest/gtest.h>

#include "core/checkers.h"
#include "model/text.h"
#include "sched/engine.h"
#include "sched/relatively_atomic.h"
#include "sched/timestamp.h"
#include "sched/verify.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

// ----------------------------------------------------------------- TO

TEST(Timestamp, InOrderAccessesGranted) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\n");
  TimestampScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.late_rejections(), 0u);
}

TEST(Timestamp, LateWriteAfterYoungerReadAborts) {
  auto txns = ParseTransactionSet("T1 = r1[y] w1[x]\nT2 = r2[x]\n");
  TimestampScheduler scheduler(*txns);
  // T1 starts first (ts 1), then T2 (ts 2) reads x; T1's write of x is
  // now too late.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAborted);
  EXPECT_EQ(scheduler.late_rejections(), 1u);
  // After the abort T1 restarts with a fresh, larger timestamp.
  scheduler.OnAbort(0);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAccept);
}

TEST(Timestamp, LateReadAfterYoungerWriteAborts) {
  auto txns = ParseTransactionSet("T1 = r1[y] r1[x]\nT2 = w2[x]\n");
  TimestampScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAborted);
}

TEST(Timestamp, AlwaysConflictSerializableOnRandomWorkloads) {
  Rng rng(0x70AA);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(5);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    wp.object_count = 2 + rng.UniformIndex(5);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    TimestampScheduler scheduler(txns);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 200000;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed) << "round " << round;
    const RunVerification verification =
        VerifyRun(txns, AbsoluteSpec(txns), result,
                  Guarantee::kConflictSerializable);
    EXPECT_TRUE(verification.guarantee_held) << "round " << round;
  }
}

// ----------------------------------------------------------------- RA

TEST(RelativelyAtomic, BlocksEntryIntoOpenUnit) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[y]\n");
  const AtomicitySpec spec(*txns);  // absolute: T1 is one unit
  RelativelyAtomicScheduler scheduler(*txns, spec);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  // T1's unit is open: T2 must wait even though there is no conflict.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kRetry);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAccept);
  // Unit complete: T2 may proceed.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
}

TEST(RelativelyAtomic, BreakpointOpensTheDoor) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[y]\n");
  AtomicitySpec spec(*txns);
  spec.SetBreakpoint(0, 1, 0);
  RelativelyAtomicScheduler scheduler(*txns, spec);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  // T1 stands at a breakpoint for T2: no open unit.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
}

TEST(RelativelyAtomic, AbsoluteSpecSerializesStarts) {
  // Under absolute atomicity a transaction's whole body is one unit, so
  // once T1 starts, T2 cannot even begin until T1 finishes.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[y] w2[y]\n");
  const AtomicitySpec spec(*txns);
  RelativelyAtomicScheduler scheduler(*txns, spec);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kRetry);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(1)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(1)), AdmitOutcome::kAccept);
}

TEST(RelativelyAtomic, NeverDeadlocksNorAborts) {
  // Deadlock-freedom: a waits-for cycle would need cyclic opennesses
  // T1 open-against-T2, ..., Tk open-against-T1; the *latest* grant that
  // created one of them was only admissible because nothing was open
  // against its transaction — contradicting an earlier openness of the
  // cycle. Hence blocked transactions always drain and the abort path
  // never fires.
  Rng rng(0x4A4C);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(5);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    wp.object_count = 2 + rng.UniformIndex(4);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    RelativelyAtomicScheduler scheduler(txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 200000;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed) << "round " << round;
    EXPECT_EQ(result.metrics.aborts, 0u) << "round " << round;
    EXPECT_EQ(result.metrics.cascade_aborts, 0u) << "round " << round;
  }
}

TEST(RelativelyAtomic, CommittedSchedulesAreRelativelyAtomic) {
  Rng rng(0x4A4A);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(4);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.object_count = 2 + rng.UniformIndex(4);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    RelativelyAtomicScheduler scheduler(txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 200000;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed) << "round " << round;
    auto schedule = result.CommittedSchedule(txns);
    ASSERT_TRUE(schedule.ok());
    // The strongest guarantee in the lattice short of serial: Def. 1.
    EXPECT_TRUE(IsRelativelyAtomic(txns, *schedule, spec))
        << "round " << round;
  }
}

TEST(RelativelyAtomic, FullyRelaxedSpecNeverBlocks) {
  Rng rng(0x4A4B);
  WorkloadParams wp;
  wp.txn_count = 5;
  wp.object_count = 2;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec relaxed = FullyRelaxedSpec(txns);
  RelativelyAtomicScheduler scheduler(txns, relaxed);
  SimParams sp;
  const SimResult result = RunSimulation(txns, &scheduler, sp);
  ASSERT_TRUE(result.metrics.completed);
  EXPECT_EQ(result.metrics.blocks, 0u);
  EXPECT_EQ(result.metrics.aborts, 0u);
}

}  // namespace
}  // namespace relser
