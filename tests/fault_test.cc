// Fault-tolerance tests: the exact abort path (RemoveTransactionExact
// differentially against rebuilt-from-scratch checkers, 500+ seeded
// rounds), the admitter's abort/cascade/shed/timeout machinery, and
// FaultPlan determinism (pure queries — identical at any pool size).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "exec/faultplan.h"
#include "model/schedule.h"
#include "model/text.h"
#include "obs/trace.h"
#include "sched/admitter.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

// Feeds the checker's surviving feed into a brand-new checker and
// returns its digest — the ground truth RemoveTransactionExact claims
// bit-identity with.
std::uint64_t RebuiltDigest(const TransactionSet& txns,
                            const AtomicitySpec& spec,
                            const OnlineRsrChecker& checker) {
  OnlineRsrChecker rebuilt(txns, spec);
  for (const std::size_t gid : checker.feed_log()) {
    EXPECT_TRUE(rebuilt.TryAppend(txns.OpByGlobalId(gid)).ok())
        << "surviving feed must replay cleanly";
  }
  return rebuilt.StateDigest();
}

// 520 seeded rounds: random workload, random spec, random feed with
// interleaved random exact aborts. After every abort the checker's
// digest must equal a from-scratch checker fed the survivors — the
// no-accumulated-conservatism guarantee the admitter's cascade
// machinery relies on.
TEST(FaultTest, ExactAbortIsBitIdenticalToRebuild) {
  constexpr int kRounds = 520;
  Rng base(0xFA017);
  for (int round = 0; round < kRounds; ++round) {
    Rng rng = base.Split(static_cast<std::uint64_t>(round));
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(6);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.object_count = 2 + rng.UniformIndex(4);  // dense: real conflicts
    wp.read_ratio = 0.5;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    OnlineRsrChecker checker(txns, spec);

    std::vector<std::uint32_t> next_op(txns.txn_count(), 0);
    std::vector<std::uint8_t> dead(txns.txn_count(), 0);
    std::size_t steps = txns.total_ops() + 4;
    std::size_t aborts_done = 0;
    while (steps-- > 0) {
      // Mostly feed; sometimes abort a transaction that has executed ops.
      if (rng.Bernoulli(0.15)) {
        std::vector<TxnId> candidates;
        for (TxnId t = 0; t < txns.txn_count(); ++t) {
          if (dead[t] == 0 && checker.TxnHasExecuted(t)) {
            candidates.push_back(t);
          }
        }
        if (!candidates.empty()) {
          const TxnId victim = rng.Choice(candidates);
          checker.RemoveTransactionExact(victim);
          dead[victim] = 1;
          ++aborts_done;
          ASSERT_EQ(checker.StateDigest(), RebuiltDigest(txns, spec, checker))
              << "round " << round << " after aborting T" << victim;
          continue;
        }
      }
      std::vector<TxnId> feedable;
      for (TxnId t = 0; t < txns.txn_count(); ++t) {
        if (dead[t] == 0 && next_op[t] < txns.txn(t).size()) {
          feedable.push_back(t);
        }
      }
      if (feedable.empty()) break;
      const TxnId t = rng.Choice(feedable);
      const Operation& op = txns.txn(t).op(next_op[t]);
      if (checker.TryAppend(op).ok()) {
        ++next_op[t];
      } else {
        // Mirror the admitter: a certification rejection aborts the
        // transaction (exact removal) — and must also digest-match.
        if (checker.TxnHasExecuted(t)) {
          checker.RemoveTransactionExact(t);
          ++aborts_done;
          ASSERT_EQ(checker.StateDigest(), RebuiltDigest(txns, spec, checker))
              << "round " << round << " after reject-abort of T" << t;
        }
        dead[t] = 1;
      }
    }
    if (round == 0) {
      EXPECT_GT(aborts_done, 0u) << "first round should exercise aborts";
    }
  }
}

// A voluntary abort must cascade to live transactions that read the
// aborted writer's data, but never to committed ones.
TEST(FaultTest, ClientAbortCascadesToDirtyReaders) {
  // T1 writes x and never finishes; T2 reads x (dirty) then stalls; T3
  // is independent. Aborting T1 must cascade-abort T2 and leave T3
  // untouched.
  auto txns = ParseTransactionSet(
      "T1 = w1[x] w1[y]\n"
      "T2 = r2[x] w2[z] w2[u]\n"
      "T3 = w3[v] w3[v]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = FullyRelaxedSpec(*txns);

  Tracer tracer(TraceLevel::kFull);
  AdmitterOptions options;
  options.tracer = &tracer;
  ConcurrentAdmitter admitter(*txns, spec, options);
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));  // w1[x]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));  // r2[x] dirty
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(1)));  // w2[z]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(2).op(0)));  // w3[v]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(2).op(1)));  // w3[v] commits T3

  EXPECT_EQ(admitter.AbortTxn(0), AdmitOutcome::kAborted);
  admitter.Flush();
  EXPECT_EQ(admitter.TxnVerdict(1), AdmitOutcome::kAborted);  // cascaded
  EXPECT_TRUE(admitter.TxnVerdict(2));
  EXPECT_TRUE(admitter.TxnCommitted(2));

  // Submitting more of the dead transactions answers with their death
  // outcome and leaves the checker untouched.
  EXPECT_EQ(admitter.SubmitAndWait(txns->txn(0).op(1)), AdmitOutcome::kAborted);
  EXPECT_EQ(admitter.SubmitAndWait(txns->txn(1).op(2)), AdmitOutcome::kAborted);
  admitter.Stop();

  // Only T3 survives, and the post-cascade state is bit-identical to a
  // checker that only ever saw T3.
  EXPECT_EQ(admitter.checker().executed_count(), 2u);
  EXPECT_EQ(admitter.checker().StateDigest(),
            RebuiltDigest(*txns, spec, admitter.checker()));
  EXPECT_EQ(admitter.unrecoverable_reads(), 0u);
  EXPECT_EQ(tracer.counters().aborts, 1u);
  EXPECT_EQ(tracer.counters().cascade_aborts, 1u);
  EXPECT_EQ(tracer.counters().commits, 1u);
}

// Aborting a committed transaction must be refused (commits are final),
// and the dirty read it performed earlier is counted as unrecoverable
// when its writer aborts.
TEST(FaultTest, CommittedTransactionsAreImmune) {
  auto txns = ParseTransactionSet(
      "T1 = w1[x] w1[y]\n"
      "T2 = r2[x]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = FullyRelaxedSpec(*txns);
  ConcurrentAdmitter admitter(*txns, spec);
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));  // w1[x]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));  // r2[x]: commits T2
  EXPECT_TRUE(admitter.TxnCommitted(1));
  EXPECT_EQ(admitter.AbortTxn(1), AdmitOutcome::kReject);  // immune
  EXPECT_EQ(admitter.AbortTxn(0), AdmitOutcome::kAborted);
  // AbortTxn on an already-dead transaction reports the same outcome
  // without another round-trip.
  EXPECT_EQ(admitter.AbortTxn(0), AdmitOutcome::kAborted);
  admitter.Stop();
  EXPECT_EQ(admitter.unrecoverable_reads(), 1u);
}

// Deterministic overload control: with shed_high_water = 1 and one
// drain per submission, the shed victims are exactly the newest live
// uncommitted transactions at each drain.
TEST(FaultTest, SheddingKillsNewestUncommittedFirst) {
  auto txns = ParseTransactionSet(
      "T1 = w1[a] w1[a]\n"
      "T2 = w2[b] w2[b]\n"
      "T3 = w3[c] w3[c]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = FullyRelaxedSpec(*txns);
  Tracer tracer(TraceLevel::kFull);
  AdmitterOptions options;
  options.tracer = &tracer;
  options.shed_high_water = 1;
  ConcurrentAdmitter admitter(*txns, spec, options);

  // Each SubmitAndWait drains before the next arrives, so the shed
  // check runs once per operation with a deterministic live set:
  //   w1[a]: live {} -> no shed, then live {T1}
  //   w2[b]: live {T1} -> no shed, then live {T1,T2}
  //   w3[c]: live {T1,T2} > 1 -> shed newest seen = T2; then live {T1,T3}
  //   w1[a]: live {T1,T3} > 1 -> shed newest seen = T3; T1's op commits it
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(2).op(0)));
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(1)));
  admitter.Stop();

  EXPECT_TRUE(admitter.TxnCommitted(0));
  EXPECT_EQ(admitter.TxnVerdict(1), AdmitOutcome::kShed);
  EXPECT_EQ(admitter.TxnVerdict(2), AdmitOutcome::kShed);
  EXPECT_EQ(tracer.counters().sheds, 2u);
  EXPECT_EQ(tracer.counters().commits, 1u);
  // Shed events are transaction-level: no op payload, and they do not
  // feed the requests identity.
  EXPECT_EQ(tracer.counters().requests,
            tracer.counters().admits + tracer.counters().delays +
                tracer.counters().rejects);
}

// Backpressure and deadlines: a fault plan that pauses the admission
// core makes the bounded ring fill (kRetry) and deadlines expire
// (kTimeout); SubmitWithBackoff rides out the retries.
TEST(FaultTest, BackpressureRetriesAndDeadlineTimeouts) {
  WorkloadParams wp;
  wp.txn_count = 24;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 3;
  wp.object_count = 64;  // sparse: decisions themselves are trivial
  wp.read_ratio = 0.5;
  Rng rng(0xFA02);
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = FullyRelaxedSpec(txns);

  FaultPlanParams fp;
  fp.core_pause_prob = 1.0;  // every decision pauses the core
  fp.max_core_pause_us = 1000;
  const FaultPlan plan(0xFA03, fp);

  Tracer tracer(TraceLevel::kCounters);
  AdmitterOptions options;
  options.queue_capacity = 2;  // tiny ring: backpressure is the norm
  options.tracer = &tracer;
  options.faults = &plan;
  ConcurrentAdmitter admitter(txns, spec, options);

  Backoff backoff(0xFA04);
  std::uint64_t timeouts = 0;
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    bool live = true;
    for (std::uint32_t i = 0; live && i < txns.txn(t).size(); ++i) {
      const Operation& op = txns.txn(t).op(i);
      if (t % 3 == 2) {
        // Every third transaction runs under a deadline far shorter
        // than the injected core pauses.
        const AdmitResult result =
            admitter.SubmitWithBackoff(op, backoff,
                                       std::chrono::microseconds(50));
        if (result.outcome == AdmitOutcome::kTimeout) ++timeouts;
        live = result.ok();
      } else {
        live = admitter.SubmitWithBackoff(op, backoff).ok();
      }
    }
  }
  admitter.Stop();

  EXPECT_GT(admitter.retries(), 0u) << "tiny ring + paused core must refuse";
  EXPECT_GT(timeouts, 0u) << "50us deadlines under ~1ms pauses must expire";
  EXPECT_EQ(tracer.counters().retries, admitter.retries());
  // The tracer records timeouts that took effect; a control message
  // that finds its transaction already committed (the op squeaked in
  // after the client gave up) or already dead is a no-op, so the
  // client-side count is an upper bound.
  EXPECT_LE(tracer.counters().timeouts, timeouts);
  // Whatever committed must still be serially admissible.
  OnlineRsrChecker replay(txns, spec);
  for (const Operation& op : admitter.CommittedLog()) {
    ASSERT_TRUE(replay.TryAppend(op).ok());
  }
}

// FaultPlan queries are pure functions of (seed, identifiers): the same
// seed yields the same schedule no matter how many threads query it or
// in what order — the property that makes fault runs replayable at any
// client-pool size.
TEST(FaultTest, FaultPlanIsDeterministicAtAnyPoolSize) {
  FaultPlanParams params;
  params.stall_prob = 0.3;
  params.drop_prob = 0.1;
  params.abort_prob = 0.4;
  params.core_pause_prob = 0.2;
  const FaultPlan plan_a(0xF00D, params);
  const FaultPlan plan_b(0xF00D, params);  // same seed, separate instance

  constexpr TxnId kTxns = 32;
  constexpr std::uint32_t kOps = 8;
  // Serial sweep through plan_a.
  std::vector<std::uint64_t> serial;
  for (TxnId t = 0; t < kTxns; ++t) {
    for (std::uint32_t i = 0; i < kOps; ++i) {
      const OpFault fault = plan_a.ForOp(t, i);
      serial.push_back((static_cast<std::uint64_t>(fault.stall_us) << 1) |
                       (fault.drop ? 1u : 0u));
    }
    serial.push_back(plan_a.AbortAfter(t, kOps).value_or(0));
  }
  for (std::uint64_t step = 0; step < 64; ++step) {
    serial.push_back(plan_a.CorePauseUs(step));
  }

  // The same sweep, sharded over 4 threads in interleaved order and
  // against the sibling instance.
  std::vector<std::uint64_t> sharded(serial.size(), 0);
  std::vector<std::thread> pool;
  for (unsigned shard = 0; shard < 4; ++shard) {
    pool.emplace_back([&, shard] {
      for (TxnId t = kTxns; t-- > 0;) {  // reverse order on purpose
        if (t % 4 != shard) continue;
        const std::size_t base = static_cast<std::size_t>(t) * (kOps + 1);
        for (std::uint32_t i = 0; i < kOps; ++i) {
          const OpFault fault = plan_b.ForOp(t, i);
          sharded[base + i] =
              (static_cast<std::uint64_t>(fault.stall_us) << 1) |
              (fault.drop ? 1u : 0u);
        }
        sharded[base + kOps] = plan_b.AbortAfter(t, kOps).value_or(0);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  for (std::uint64_t step = 0; step < 64; ++step) {
    sharded[static_cast<std::size_t>(kTxns) * (kOps + 1) + step] =
        plan_b.CorePauseUs(step);
  }
  EXPECT_EQ(serial, sharded);

  // A different seed must not reproduce the schedule.
  const FaultPlan other(0xBEEF, params);
  bool any_difference = false;
  for (TxnId t = 0; t < kTxns && !any_difference; ++t) {
    for (std::uint32_t i = 0; i < kOps; ++i) {
      const OpFault a = plan_a.ForOp(t, i);
      const OpFault b = other.ForOp(t, i);
      if (a.stall_us != b.stall_us || a.drop != b.drop) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

// Boundary semantics of the plan's queries.
TEST(FaultTest, FaultPlanRespectsBounds) {
  FaultPlanParams always;
  always.abort_prob = 1.0;
  always.stall_prob = 1.0;
  always.max_stall_us = 7;
  const FaultPlan plan(0x5EED, always);
  for (TxnId t = 0; t < 64; ++t) {
    // Single-op transactions have no "mid-stream" to abort at.
    EXPECT_EQ(plan.AbortAfter(t, 1), std::nullopt);
    const std::optional<std::uint32_t> after = plan.AbortAfter(t, 5);
    ASSERT_TRUE(after.has_value());
    EXPECT_GE(*after, 1u);
    EXPECT_LE(*after, 4u);
    const OpFault fault = plan.ForOp(t, 0);
    EXPECT_GE(fault.stall_us, 1u);
    EXPECT_LE(fault.stall_us, 7u);
  }
  FaultPlanParams none;  // all probabilities zero
  const FaultPlan quiet(0x5EED, none);
  for (TxnId t = 0; t < 16; ++t) {
    const OpFault fault = quiet.ForOp(t, 3);
    EXPECT_EQ(fault.stall_us, 0u);
    EXPECT_FALSE(fault.drop);
    EXPECT_EQ(quiet.AbortAfter(t, 5), std::nullopt);
  }
  for (std::uint64_t step = 0; step < 32; ++step) {
    EXPECT_EQ(quiet.CorePauseUs(step), 0u);
  }
}

}  // namespace
}  // namespace relser
