// Property tests for the paper's main results, cross-validated against
// independent brute-force oracles on randomized small instances:
//
//   * Theorem 1: RSG(S) acyclic  <=>  a conflict-equivalent relatively
//     serial schedule exists (oracle: backtracking search).
//   * Witness soundness: the topological-sort witness is conflict
//     equivalent to S and relatively serial.
//   * Lemma 1 / corollary: under absolute atomicity, relatively
//     serializable == conflict serializable.
//   * Figure 5 lattice invariants on every sampled instance.
#include <gtest/gtest.h>

#include "core/brute.h"
#include "core/checkers.h"
#include "core/classify.h"
#include "core/rsr.h"
#include "model/conflict.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

struct RandomInstance {
  TransactionSet txns;
  AtomicitySpec spec;
  Schedule schedule;
};

RandomInstance MakeInstance(Rng* rng, double density) {
  WorkloadParams wp;
  wp.txn_count = 2 + rng->UniformIndex(3);
  wp.min_ops_per_txn = 1;
  wp.max_ops_per_txn = 4;
  wp.object_count = 2 + rng->UniformIndex(3);
  wp.read_ratio = 0.4;
  RandomInstance instance;
  instance.txns = GenerateTransactions(wp, rng);
  instance.spec = RandomSpec(instance.txns, density, rng);
  instance.schedule = RandomSchedule(instance.txns, rng);
  return instance;
}

class RsrPropertySweep : public ::testing::TestWithParam<double> {};

TEST_P(RsrPropertySweep, Theorem1MatchesBruteForceOracle) {
  Rng rng(0xABCD + static_cast<std::uint64_t>(GetParam() * 1000));
  for (int round = 0; round < 120; ++round) {
    const RandomInstance instance = MakeInstance(&rng, GetParam());
    const bool via_rsg = IsRelativelySerializable(
        instance.txns, instance.schedule, instance.spec);
    const BruteForceResult oracle = BruteForceRelativelySerializable(
        instance.txns, instance.schedule, instance.spec);
    ASSERT_TRUE(oracle.decided.has_value());
    EXPECT_EQ(via_rsg, *oracle.decided)
        << "Theorem 1 disagreement at round " << round << " density "
        << GetParam();
  }
}

TEST_P(RsrPropertySweep, WitnessIsConflictEquivalentAndRelativelySerial) {
  Rng rng(0xBEEF + static_cast<std::uint64_t>(GetParam() * 1000));
  int witnesses = 0;
  for (int round = 0; round < 120; ++round) {
    const RandomInstance instance = MakeInstance(&rng, GetParam());
    const RsrAnalysis analysis = AnalyzeRelativeSerializability(
        instance.txns, instance.schedule, instance.spec);
    if (!analysis.relatively_serializable) {
      EXPECT_TRUE(analysis.cycle.has_value());
      continue;
    }
    ASSERT_TRUE(analysis.witness.has_value());
    ++witnesses;
    EXPECT_TRUE(ConflictEquivalent(instance.txns, instance.schedule,
                                   *analysis.witness));
    EXPECT_TRUE(IsRelativelySerial(instance.txns, *analysis.witness,
                                   instance.spec));
  }
  EXPECT_GT(witnesses, 20);
}

TEST_P(RsrPropertySweep, LatticeInvariantsOnEveryInstance) {
  Rng rng(0xCAFE + static_cast<std::uint64_t>(GetParam() * 1000));
  for (int round = 0; round < 80; ++round) {
    const RandomInstance instance = MakeInstance(&rng, GetParam());
    ClassifyOptions options;
    options.with_relative_consistency = true;
    options.brute_force_budget = 1u << 22;
    const ScheduleClassification c = Classify(
        instance.txns, instance.schedule, instance.spec, options);
    CheckLatticeInvariants(c);
  }
}

TEST_P(RsrPropertySweep, RelativeConsistencyImpliesRelativeSerializability) {
  Rng rng(0xD00D + static_cast<std::uint64_t>(GetParam() * 1000));
  for (int round = 0; round < 100; ++round) {
    const RandomInstance instance = MakeInstance(&rng, GetParam());
    const BruteForceResult rc = IsRelativelyConsistent(
        instance.txns, instance.schedule, instance.spec);
    ASSERT_TRUE(rc.decided.has_value());
    if (*rc.decided) {
      EXPECT_TRUE(IsRelativelySerializable(instance.txns, instance.schedule,
                                           instance.spec));
      // The witness must be relatively atomic and conflict equivalent.
      ASSERT_TRUE(rc.witness.has_value());
      EXPECT_TRUE(
          IsRelativelyAtomic(instance.txns, *rc.witness, instance.spec));
      EXPECT_TRUE(ConflictEquivalent(instance.txns, instance.schedule,
                                     *rc.witness));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RsrPropertySweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0),
                         [](const auto& param_info) {
                           return "density_" +
                                  std::to_string(static_cast<int>(
                                      param_info.param * 100));
                         });

TEST(Lemma1, AbsoluteAtomicityCollapsesToConflictSerializability) {
  Rng rng(31415);
  for (int round = 0; round < 300; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(4);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.object_count = 2 + rng.UniformIndex(4);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = AbsoluteSpec(txns);
    const Schedule schedule = RandomSchedule(txns, &rng);
    EXPECT_EQ(IsRelativelySerializable(txns, schedule, spec),
              IsConflictSerializable(txns, schedule))
        << "round " << round;
  }
}

TEST(Lemma1, RelativelySerialUnderAbsoluteIsEquivalentToSerial) {
  Rng rng(27182);
  int hits = 0;
  for (int round = 0; round < 400 && hits < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 3;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = AbsoluteSpec(txns);
    const Schedule schedule = RandomSchedule(txns, &rng);
    if (!IsRelativelySerial(txns, schedule, spec)) continue;
    ++hits;
    // Lemma 1: conflict equivalent to SOME serial schedule.
    bool equivalent_to_serial = false;
    std::vector<TxnId> perm = {0, 1, 2};
    do {
      auto serial = Schedule::Serial(txns, perm);
      ASSERT_TRUE(serial.ok());
      equivalent_to_serial = equivalent_to_serial ||
                             ConflictEquivalent(txns, schedule, *serial);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_TRUE(equivalent_to_serial) << "round " << round;
  }
  EXPECT_GE(hits, 30);
}

TEST(Theorem1, RejectionAlwaysComesWithARealCycle) {
  Rng rng(16180);
  int rejections = 0;
  for (int round = 0; round < 200 && rejections < 25; ++round) {
    const double density = rng.UniformDouble() * 0.4;
    RandomInstance instance = [&] {
      Rng fork = rng.Fork();
      return MakeInstance(&fork, density);
    }();
    rng.Next();
    const RsrAnalysis analysis = AnalyzeRelativeSerializability(
        instance.txns, instance.schedule, instance.spec);
    if (analysis.relatively_serializable) continue;
    ++rejections;
    ASSERT_TRUE(analysis.cycle.has_value());
    const auto& cycle = *analysis.cycle;
    ASSERT_GE(cycle.size(), 2u);
    const RelativeSerializationGraph rsg(instance.txns, instance.schedule,
                                         instance.spec);
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_NE(rsg.KindsOf(cycle[i], cycle[(i + 1) % cycle.size()]), 0)
          << "reported cycle uses a non-arc";
    }
  }
  EXPECT_GE(rejections, 10);
}

}  // namespace
}  // namespace relser
