// Property and integration tests for the scheduler layer: protocol
// guarantees on scenario workloads, RSGT-specific properties, the
// experiment aggregation harness, and the scheduler factory.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/experiment.h"
#include "sched/factory.h"
#include "sched/graph_based.h"
#include "sched/verify.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/scenarios.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(Factory, KnowsEveryAdvertisedScheduler) {
  Rng rng(1);
  WorkloadParams wp;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = AbsoluteSpec(txns);
  for (const std::string& name : AllSchedulerNames()) {
    auto scheduler = MakeScheduler(name, txns, spec);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_EQ(scheduler->name(), name);
  }
  EXPECT_EQ(MakeScheduler("nonsense", txns, spec), nullptr);
}

TEST(Guarantees, MapSchedulersToTheRightClass) {
  EXPECT_EQ(GuaranteeOf("serial"), Guarantee::kConflictSerializable);
  EXPECT_EQ(GuaranteeOf("2pl"), Guarantee::kConflictSerializable);
  EXPECT_EQ(GuaranteeOf("sgt"), Guarantee::kConflictSerializable);
  EXPECT_EQ(GuaranteeOf("rsgt"), Guarantee::kRelativelySerializable);
  EXPECT_EQ(GuaranteeOf("unit2pl"), Guarantee::kRelativelySerializable);
}

TEST(Rsgt, NeverAbortsUnderFullyRelaxedSpecs) {
  // With singleton units, every RSG arc points forward in execution
  // time, so no request can close a cycle: RSGT admits everything.
  Rng rng(2);
  for (int round = 0; round < 25; ++round) {
    WorkloadParams wp;
    wp.txn_count = 6;
    wp.object_count = 2;  // extreme contention
    wp.read_ratio = 0.2;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = FullyRelaxedSpec(txns);
    RSGTScheduler scheduler(txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed);
    EXPECT_EQ(result.metrics.aborts, 0u);
    EXPECT_EQ(scheduler.cycle_rejections(), 0u);
    const RunVerification verification =
        VerifyRun(txns, spec, result, Guarantee::kRelativelySerializable);
    EXPECT_TRUE(verification.guarantee_held);
  }
}

TEST(Rsgt, MatchesSgtBehaviourUnderAbsoluteSpecs) {
  // Under absolute atomicity, RSGT certifies exactly conflict
  // serializability (Lemma 1), so its committed schedules must pass the
  // classical guarantee too.
  Rng rng(3);
  for (int round = 0; round < 15; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = AbsoluteSpec(txns);
    RSGTScheduler scheduler(txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed);
    const RunVerification verification =
        VerifyRun(txns, spec, result, Guarantee::kConflictSerializable);
    EXPECT_TRUE(verification.guarantee_held);
  }
}

class ScenarioSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioSweep, BankingScenarioCompletesWithGuarantee) {
  Rng rng(4);
  BankingParams params;
  params.families = 2;
  params.customers_per_family = 2;
  params.transfers_per_customer = 2;
  const BankingScenario scenario = MakeBankingScenario(params, &rng);
  auto scheduler = MakeScheduler(GetParam(), scenario.txns, scenario.spec);
  SimParams sp;
  sp.seed = 11;
  sp.max_ticks = 200000;
  const SimResult result =
      RunSimulation(scenario.txns, scheduler.get(), sp);
  ASSERT_TRUE(result.metrics.completed);
  const RunVerification verification = VerifyRun(
      scenario.txns, scenario.spec, result, GuaranteeOf(GetParam()));
  EXPECT_TRUE(verification.guarantee_held);
}

TEST_P(ScenarioSweep, CadScenarioCompletesWithGuarantee) {
  Rng rng(5);
  CadParams params;
  params.teams = 2;
  params.designers_per_team = 2;
  params.phases = 2;
  const CadScenario scenario = MakeCadScenario(params, &rng);
  auto scheduler = MakeScheduler(GetParam(), scenario.txns, scenario.spec);
  SimParams sp;
  sp.seed = 12;
  sp.max_ticks = 200000;
  const SimResult result =
      RunSimulation(scenario.txns, scheduler.get(), sp);
  ASSERT_TRUE(result.metrics.completed);
  const RunVerification verification = VerifyRun(
      scenario.txns, scenario.spec, result, GuaranteeOf(GetParam()));
  EXPECT_TRUE(verification.guarantee_held);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, ScenarioSweep,
                         ::testing::ValuesIn(AllSchedulerNames()),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

TEST(Aggregate, WelfordMatchesClosedForm) {
  Aggregate aggregate;
  for (const double sample : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    aggregate.Add(sample);
  }
  EXPECT_EQ(aggregate.count(), 8u);
  EXPECT_NEAR(aggregate.mean(), 5.0, 1e-12);
  // Sample stddev of the classic dataset is sqrt(32/7).
  EXPECT_NEAR(aggregate.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(aggregate.min(), 2.0);
  EXPECT_EQ(aggregate.max(), 9.0);
}

TEST(Aggregate, DegenerateCases) {
  Aggregate aggregate;
  EXPECT_EQ(aggregate.count(), 0u);
  EXPECT_EQ(aggregate.stddev(), 0.0);
  aggregate.Add(3.0);
  EXPECT_EQ(aggregate.mean(), 3.0);
  EXPECT_EQ(aggregate.stddev(), 0.0);
  EXPECT_EQ(aggregate.min(), 3.0);
  EXPECT_EQ(aggregate.max(), 3.0);
}

TEST(RunComparison, AggregatesEverySchedulerWithGuarantees) {
  Rng rng(6);
  WorkloadParams wp;
  wp.txn_count = 5;
  wp.object_count = 6;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomUniformObserverSpec(txns, 0.5, &rng);
  ComparisonParams cp;
  cp.runs = 3;
  cp.sim.seed = 100;
  const auto rows =
      RunComparison(txns, spec, AllSchedulerNames(), cp);
  ASSERT_EQ(rows.size(), AllSchedulerNames().size());
  for (const auto& row : rows) {
    EXPECT_TRUE(row.all_completed) << row.scheduler;
    EXPECT_TRUE(row.all_guarantees_held) << row.scheduler;
    EXPECT_EQ(row.makespan.count(), 3u);
    EXPECT_GT(row.throughput.mean(), 0.0);
  }
}

TEST(RunComparison, DeterministicForFixedSeeds) {
  Rng rng(7);
  WorkloadParams wp;
  wp.txn_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = AbsoluteSpec(txns);
  ComparisonParams cp;
  cp.runs = 2;
  cp.sim.seed = 55;
  const auto a = RunComparison(txns, spec, {"2pl", "rsgt"}, cp);
  const auto b = RunComparison(txns, spec, {"2pl", "rsgt"}, cp);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].makespan.mean(), b[i].makespan.mean());
    EXPECT_EQ(a[i].throughput.mean(), b[i].throughput.mean());
  }
}

}  // namespace
}  // namespace relser
