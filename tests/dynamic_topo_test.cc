// Tests for IncrementalTopology (Pearce-Kelly dynamic topological order),
// including a randomized differential test against the offline cycle
// detector — the property the online schedulers depend on.
#include <gtest/gtest.h>

#include "graph/cycle.h"
#include "graph/dynamic_topo.h"
#include "util/rng.h"

namespace relser {
namespace {

using AddResult = IncrementalTopology::AddResult;

TEST(IncrementalTopology, AcceptsForwardEdges) {
  IncrementalTopology topo(4);
  EXPECT_EQ(topo.AddEdge(0, 1), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(1, 2), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(0, 3), AddResult::kInserted);
  EXPECT_EQ(topo.edge_count(), 3u);
}

TEST(IncrementalTopology, ReportsDuplicates) {
  IncrementalTopology topo(3);
  EXPECT_EQ(topo.AddEdge(0, 1), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(0, 1), AddResult::kDuplicate);
  EXPECT_EQ(topo.edge_count(), 1u);
}

TEST(IncrementalTopology, RejectsSelfLoop) {
  IncrementalTopology topo(2);
  EXPECT_EQ(topo.AddEdge(1, 1), AddResult::kCycle);
  EXPECT_EQ(topo.edge_count(), 0u);
}

TEST(IncrementalTopology, RejectsTwoCycle) {
  IncrementalTopology topo(2);
  EXPECT_EQ(topo.AddEdge(0, 1), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(1, 0), AddResult::kCycle);
  // Rejected insert leaves the structure unchanged.
  EXPECT_EQ(topo.edge_count(), 1u);
  EXPECT_EQ(topo.AddEdge(1, 0), AddResult::kCycle);
}

TEST(IncrementalTopology, BackwardEdgeTriggersReorder) {
  IncrementalTopology topo(3);
  // Initial order is 0,1,2; edge 2->0 forces 2 before 0.
  EXPECT_EQ(topo.AddEdge(2, 0), AddResult::kInserted);
  EXPECT_LT(topo.OrderOf(2), topo.OrderOf(0));
  // The order must remain valid for subsequent inserts.
  EXPECT_EQ(topo.AddEdge(0, 1), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(2, 1), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(1, 2), AddResult::kCycle);
}

TEST(IncrementalTopology, WouldCreateCycleDoesNotMutate) {
  IncrementalTopology topo(3);
  topo.AddEdge(0, 1);
  topo.AddEdge(1, 2);
  EXPECT_TRUE(topo.WouldCreateCycle(2, 0));
  EXPECT_FALSE(topo.WouldCreateCycle(0, 2));
  EXPECT_EQ(topo.edge_count(), 2u);
  // The probe must not have inserted anything.
  EXPECT_EQ(topo.AddEdge(2, 0), AddResult::kCycle);
}

TEST(IncrementalTopology, RemoveEdgeAllowsReinsertOpposite) {
  IncrementalTopology topo(2);
  topo.AddEdge(0, 1);
  EXPECT_TRUE(topo.RemoveEdge(0, 1));
  EXPECT_EQ(topo.AddEdge(1, 0), AddResult::kInserted);
}

TEST(IncrementalTopology, IsolateNodeClearsItsEdges) {
  IncrementalTopology topo(4);
  topo.AddEdge(0, 1);
  topo.AddEdge(1, 2);
  topo.AddEdge(2, 3);
  topo.IsolateNode(1);
  EXPECT_EQ(topo.edge_count(), 1u);
  // 2 -> 1 is now insertable (old 1 -> 2 is gone).
  EXPECT_EQ(topo.AddEdge(2, 1), AddResult::kInserted);
}

TEST(IncrementalTopology, EnsureNodesAppends) {
  IncrementalTopology topo(2);
  topo.AddEdge(0, 1);
  topo.EnsureNodes(4);
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_EQ(topo.AddEdge(3, 0), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(1, 3), AddResult::kCycle);
}

TEST(IncrementalTopology, OrderAlwaysConsistent) {
  IncrementalTopology topo(6);
  topo.AddEdge(5, 0);
  topo.AddEdge(4, 5);
  topo.AddEdge(0, 3);
  topo.AddEdge(3, 1);
  const auto order = topo.Order();
  std::vector<std::size_t> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& [from, to] : topo.graph().Edges()) {
    EXPECT_LT(position[from], position[to]);
  }
}

// Differential fuzz: every AddEdge decision must agree with the offline
// detector, the maintained order must stay valid, and removals /
// isolations must be mirrored exactly.
TEST(IncrementalTopology, RandomizedDifferentialAgainstOfflineOracle) {
  Rng rng(20240601);
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 2 + rng.UniformIndex(9);
    IncrementalTopology topo(n);
    Digraph reference(n);
    for (int step = 0; step < 50; ++step) {
      const double roll = rng.UniformDouble();
      const NodeId a = rng.UniformIndex(n);
      const NodeId b = rng.UniformIndex(n);
      if (roll < 0.65) {
        Digraph trial = reference;
        const bool is_new = a != b && trial.AddEdge(a, b);
        const bool closes_cycle = a == b || HasCycle(trial);
        const AddResult result = topo.AddEdge(a, b);
        if (a == b) {
          EXPECT_EQ(result, AddResult::kCycle);
          continue;
        }
        if (!is_new && !closes_cycle) {
          EXPECT_EQ(result, AddResult::kDuplicate);
        } else if (closes_cycle) {
          EXPECT_EQ(result, AddResult::kCycle) << "missed cycle";
        } else {
          EXPECT_EQ(result, AddResult::kInserted) << "false cycle";
          reference.AddEdge(a, b);
        }
      } else if (roll < 0.85) {
        EXPECT_EQ(topo.RemoveEdge(a, b), reference.RemoveEdge(a, b));
      } else {
        topo.IsolateNode(a);
        reference.IsolateNode(a);
      }
      ASSERT_EQ(topo.edge_count(), reference.edge_count());
      const auto order = topo.Order();
      std::vector<std::size_t> position(n);
      for (std::size_t i = 0; i < n; ++i) position[order[i]] = i;
      for (const auto& [from, to] : reference.Edges()) {
        ASSERT_LT(position[from], position[to])
            << "order invalidated at round " << round << " step " << step;
      }
    }
  }
}

TEST(AddEdges, EmptyBatchSucceeds) {
  IncrementalTopology topo(2);
  EXPECT_TRUE(topo.AddEdges({}));
  EXPECT_EQ(topo.edge_count(), 0u);
}

TEST(AddEdges, InsertsAllArcsAndTolerateDuplicates) {
  IncrementalTopology topo(4);
  topo.AddEdge(0, 1);
  EXPECT_TRUE(topo.AddEdges({{0, 1}, {1, 2}, {1, 2}, {2, 3}}));
  EXPECT_EQ(topo.edge_count(), 3u);
  EXPECT_TRUE(topo.graph().HasEdge(1, 2));
  EXPECT_TRUE(topo.graph().HasEdge(2, 3));
}

TEST(AddEdges, RollsBackEverythingOnCycle) {
  IncrementalTopology topo(4);
  topo.AddEdge(0, 1);
  // With the pre-existing 0->1, arc 3->0 closes the cycle 0->1->2->3->0
  // after 1->2 and 2->3 were already inserted by this batch.
  EXPECT_FALSE(topo.AddEdges({{1, 2}, {2, 3}, {3, 0}, {2, 1}}));
  // All-or-nothing: only the pre-existing edge survives.
  EXPECT_EQ(topo.edge_count(), 1u);
  EXPECT_TRUE(topo.graph().HasEdge(0, 1));
  EXPECT_FALSE(topo.graph().HasEdge(1, 2));
  EXPECT_FALSE(topo.graph().HasEdge(3, 0));
  // The structure is still usable and consistent after rollback.
  EXPECT_EQ(topo.AddEdge(1, 2), AddResult::kInserted);
  EXPECT_EQ(topo.AddEdge(2, 0), AddResult::kCycle);
}

TEST(AddEdges, SelfLoopInBatchRejectsWholeBatch) {
  IncrementalTopology topo(3);
  EXPECT_FALSE(topo.AddEdges({{0, 1}, {2, 2}}));
  EXPECT_EQ(topo.edge_count(), 0u);
}

// Regression: pass 1 defers order-inconsistent arcs by *index*. Re-testing
// the position predicate in pass 2 is wrong because earlier pass-2 inserts
// reorder positions — a deferred arc could then look "already consistent"
// and be skipped entirely, silently missing cycles later.
TEST(AddEdges, DeferredArcsAreInsertedEvenAfterReorders) {
  IncrementalTopology topo(4);
  // Initial order 0,1,2,3: both arcs are backward, so both are deferred.
  // Inserting 3->1 reorders to 0,3,2,1 — at which point 2->1 *looks*
  // order-consistent, and re-testing the predicate would skip it.
  EXPECT_TRUE(topo.AddEdges({{3, 1}, {2, 1}}));
  EXPECT_EQ(topo.edge_count(), 2u);
  EXPECT_TRUE(topo.graph().HasEdge(3, 1));
  EXPECT_TRUE(topo.graph().HasEdge(2, 1));
  // The skipped arc would have let this cycle through.
  EXPECT_EQ(topo.AddEdge(1, 2), AddResult::kCycle);
}

// Batched insertion must agree with "insert one at a time, unwind on
// failure" — the semantics the schedulers relied on before the batch API.
TEST(AddEdges, RandomizedEquivalentToPerEdgeTrialInsertion) {
  Rng rng(77001);
  for (int round = 0; round < 400; ++round) {
    const std::size_t n = 2 + rng.UniformIndex(8);
    IncrementalTopology batched(n);
    IncrementalTopology per_edge(n);
    for (int step = 0; step < 12; ++step) {
      std::vector<std::pair<NodeId, NodeId>> arcs;
      const std::size_t count = rng.UniformIndex(5);
      for (std::size_t k = 0; k < count; ++k) {
        arcs.emplace_back(rng.UniformIndex(n), rng.UniformIndex(n));
      }
      const bool batch_ok = batched.AddEdges(arcs);
      // Reference: per-edge trial insertion with manual unwind.
      std::vector<std::pair<NodeId, NodeId>> inserted;
      bool ref_ok = true;
      for (const auto& [from, to] : arcs) {
        const AddResult result = per_edge.AddEdge(from, to);
        if (result == AddResult::kInserted) {
          inserted.emplace_back(from, to);
        } else if (result == AddResult::kCycle) {
          for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
            per_edge.RemoveEdge(it->first, it->second);
          }
          ref_ok = false;
          break;
        }
      }
      ASSERT_EQ(batch_ok, ref_ok) << "round " << round << " step " << step;
      ASSERT_EQ(batched.edge_count(), per_edge.edge_count());
      for (const auto& [from, to] : per_edge.graph().Edges()) {
        ASSERT_TRUE(batched.graph().HasEdge(from, to));
      }
    }
  }
}

}  // namespace
}  // namespace relser
