// Unit tests for the graph substrate: Digraph, cycle detection,
// topological sorts, Tarjan SCC, transitive closure.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/closure.h"
#include "graph/cycle.h"
#include "graph/digraph.h"
#include "graph/tarjan.h"
#include "graph/topo.h"
#include "util/rng.h"

namespace relser {
namespace {

Digraph Chain(std::size_t n) {
  Digraph graph(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    graph.AddEdge(v, v + 1);
  }
  return graph;
}

// --------------------------------------------------------------- Digraph

TEST(Digraph, StartsEmpty) {
  Digraph graph(5);
  EXPECT_EQ(graph.node_count(), 5u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_TRUE(graph.Edges().empty());
}

TEST(Digraph, AddEdgeDeduplicates) {
  Digraph graph(3);
  EXPECT_TRUE(graph.AddEdge(0, 1));
  EXPECT_FALSE(graph.AddEdge(0, 1));
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(1, 0));
}

TEST(Digraph, AdjacencyListsMirrorEachOther) {
  Digraph graph(4);
  graph.AddEdge(0, 2);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  const NeighborSpan outs0 = graph.OutNeighbors(0);
  EXPECT_EQ(std::vector<NodeId>(outs0.begin(), outs0.end()),
            (std::vector<NodeId>{2}));
  const NeighborSpan ins2 = graph.InNeighbors(2);
  EXPECT_EQ(std::vector<NodeId>(ins2.begin(), ins2.end()),
            (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(graph.InDegree(2), 2u);
  EXPECT_EQ(graph.OutDegree(2), 1u);
}

TEST(Digraph, RemoveEdge) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  EXPECT_TRUE(graph.RemoveEdge(0, 1));
  EXPECT_FALSE(graph.RemoveEdge(0, 1));  // already gone
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_FALSE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_TRUE(graph.InNeighbors(1).empty());
}

TEST(Digraph, IsolateNodeRemovesAllIncidentEdges) {
  Digraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(3, 1);
  graph.AddEdge(0, 2);
  graph.IsolateNode(1);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.OutNeighbors(1).empty());
  EXPECT_TRUE(graph.InNeighbors(1).empty());
  EXPECT_FALSE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(3, 1));
}

TEST(Digraph, IsolateNodeWithSelfLoop) {
  Digraph graph(2);
  graph.AddEdge(0, 0);
  graph.AddEdge(0, 1);
  graph.IsolateNode(0);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(Digraph, EnsureNodesGrows) {
  Digraph graph(2);
  graph.EnsureNodes(5);
  EXPECT_EQ(graph.node_count(), 5u);
  graph.EnsureNodes(3);  // never shrinks
  EXPECT_EQ(graph.node_count(), 5u);
  EXPECT_TRUE(graph.AddEdge(4, 0));
}

TEST(Digraph, EdgesEnumeratesAll) {
  Digraph graph(3);
  graph.AddEdge(2, 0);
  graph.AddEdge(0, 1);
  const auto edges = graph.Edges();
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_NE(std::find(edges.begin(), edges.end(),
                      std::make_pair(NodeId{2}, NodeId{0})),
            edges.end());
}

TEST(Digraph, SwapCompactedRemovalKeepsIndexCoherent) {
  // Removing from the middle of a neighbor list swap-moves the last entry
  // into the hole; the hashed edge index must track the moved edge.
  Digraph graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(0, 3);
  graph.AddEdge(0, 4);
  EXPECT_TRUE(graph.RemoveEdge(0, 2));  // 0->4 moves into 0->2's slot
  EXPECT_TRUE(graph.HasEdge(0, 4));
  EXPECT_TRUE(graph.RemoveEdge(0, 4));  // must find it at its new slot
  EXPECT_FALSE(graph.HasEdge(0, 4));
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(0, 3));
  EXPECT_EQ(graph.edge_count(), 2u);
  // Re-adding a removed edge works and dedup still holds.
  EXPECT_TRUE(graph.AddEdge(0, 2));
  EXPECT_FALSE(graph.AddEdge(0, 2));
  EXPECT_EQ(graph.edge_count(), 3u);
}

TEST(Digraph, RandomizedChurnAgainstSetReference) {
  Rng rng(98765);
  for (int round = 0; round < 60; ++round) {
    const std::size_t n = 2 + rng.UniformIndex(8);
    Digraph graph(n);
    std::set<std::pair<NodeId, NodeId>> reference;
    for (int step = 0; step < 300; ++step) {
      const NodeId a = rng.UniformIndex(n);
      const NodeId b = rng.UniformIndex(n);
      const double roll = rng.UniformDouble();
      if (roll < 0.45) {
        EXPECT_EQ(graph.AddEdge(a, b), reference.emplace(a, b).second);
      } else if (roll < 0.8) {
        EXPECT_EQ(graph.RemoveEdge(a, b), reference.erase({a, b}) > 0);
      } else if (roll < 0.9) {
        graph.IsolateNode(a);
        std::erase_if(reference, [a](const auto& edge) {
          return edge.first == a || edge.second == a;
        });
      } else {
        EXPECT_EQ(graph.HasEdge(a, b), reference.count({a, b}) > 0);
      }
      ASSERT_EQ(graph.edge_count(), reference.size());
    }
    // Final structural audit: edges, degrees, and mirrored adjacency.
    for (NodeId a = 0; a < n; ++a) {
      std::size_t out = 0;
      for (NodeId b = 0; b < n; ++b) {
        if (reference.count({a, b}) > 0) {
          ++out;
          EXPECT_TRUE(graph.HasEdge(a, b));
          const auto& outs = graph.OutNeighbors(a);
          const auto& ins = graph.InNeighbors(b);
          EXPECT_NE(std::find(outs.begin(), outs.end(), b), outs.end());
          EXPECT_NE(std::find(ins.begin(), ins.end(), a), ins.end());
        } else {
          EXPECT_FALSE(graph.HasEdge(a, b));
        }
      }
      EXPECT_EQ(graph.OutDegree(a), out);
    }
  }
}

// ----------------------------------------------------------------- cycle

TEST(Cycle, ChainIsAcyclic) {
  EXPECT_FALSE(HasCycle(Chain(10)));
}

TEST(Cycle, SelfLoopIsCycle) {
  Digraph graph(2);
  graph.AddEdge(1, 1);
  EXPECT_TRUE(HasCycle(graph));
}

TEST(Cycle, TriangleCycleFound) {
  Digraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  const auto cycle = FindCycle(graph);
  ASSERT_TRUE(cycle.has_value());
  // The returned sequence must be a real directed cycle.
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_TRUE(
        graph.HasEdge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  }
}

TEST(Cycle, DiamondIsAcyclic) {
  Digraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(1, 3);
  graph.AddEdge(2, 3);
  EXPECT_FALSE(HasCycle(graph));
  EXPECT_FALSE(FindCycle(graph).has_value());
}

TEST(Cycle, CycleInSecondComponent) {
  Digraph graph(6);
  graph.AddEdge(0, 1);  // acyclic part
  graph.AddEdge(3, 4);
  graph.AddEdge(4, 5);
  graph.AddEdge(5, 3);
  ASSERT_TRUE(HasCycle(graph));
  const auto cycle = FindCycle(graph);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
}

TEST(Cycle, ReachableBasics) {
  Digraph graph = Chain(5);
  EXPECT_TRUE(Reachable(graph, 0, 4));
  EXPECT_FALSE(Reachable(graph, 4, 0));
  EXPECT_TRUE(Reachable(graph, 2, 2));  // length-0 path
}

TEST(Cycle, ReachableSetSortedAndComplete) {
  Digraph graph(5);
  graph.AddEdge(0, 2);
  graph.AddEdge(2, 4);
  graph.AddEdge(1, 3);
  EXPECT_EQ(ReachableSet(graph, 0), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(ReachableSet(graph, 3), (std::vector<NodeId>{3}));
}

// ------------------------------------------------------------------ topo

TEST(Topo, SortRespectsEdges) {
  Digraph graph(5);
  graph.AddEdge(3, 1);
  graph.AddEdge(1, 4);
  graph.AddEdge(0, 2);
  const auto order = TopologicalSort(graph);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(5);
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i]] = i;
  }
  for (const auto& [from, to] : graph.Edges()) {
    EXPECT_LT(position[from], position[to]);
  }
}

TEST(Topo, SortDetectsCycle) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  EXPECT_FALSE(TopologicalSort(graph).has_value());
  EXPECT_FALSE(LexMinTopologicalSort(graph).has_value());
}

TEST(Topo, LexMinIsLexicographicallySmallest) {
  // 2 -> 0, so 1 is the smallest available first node.
  Digraph graph(3);
  graph.AddEdge(2, 0);
  const auto order = LexMinTopologicalSort(graph);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{1, 2, 0}));
}

TEST(Topo, PriorityOrderPrefersLowPriorityReadyNodes) {
  Digraph graph(4);
  graph.AddEdge(0, 1);
  // priorities: node 3 most urgent, then 2.
  const auto order = PriorityTopologicalSort(graph, {3, 2, 1, 0});
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{3, 2, 0, 1}));
}

TEST(Topo, EmptyGraph) {
  Digraph graph(0);
  const auto order = TopologicalSort(graph);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

// ---------------------------------------------------------------- tarjan

TEST(Tarjan, SingletonComponentsOnDag) {
  const SccResult sccs = StronglyConnectedComponents(Chain(4));
  EXPECT_EQ(sccs.component_count(), 4u);
  EXPECT_TRUE(IsAcyclicByScc(Chain(4)));
}

TEST(Tarjan, FindsNontrivialComponent) {
  Digraph graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 1);
  graph.AddEdge(2, 3);
  const SccResult sccs = StronglyConnectedComponents(graph);
  EXPECT_EQ(sccs.component_count(), 4u);  // {0} {1,2} {3} {4}
  EXPECT_EQ(sccs.component[1], sccs.component[2]);
  EXPECT_NE(sccs.component[0], sccs.component[1]);
  const auto& members = sccs.members[sccs.component[1]];
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2}));
  EXPECT_FALSE(IsAcyclicByScc(graph));
}

TEST(Tarjan, SelfLoopDetectedAsCyclic) {
  Digraph graph(2);
  graph.AddEdge(0, 0);
  EXPECT_FALSE(IsAcyclicByScc(graph));
}

TEST(Tarjan, ComponentsInReverseTopologicalOrder) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  const SccResult sccs = StronglyConnectedComponents(graph);
  // Tarjan emits sinks first: component ids increase against edges.
  EXPECT_GT(sccs.component[0], sccs.component[1]);
  EXPECT_GT(sccs.component[1], sccs.component[2]);
}

TEST(Tarjan, AgreesWithDfsCycleDetectionOnRandomGraphs) {
  Rng rng(321);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 2 + rng.UniformIndex(10);
    Digraph graph(n);
    const std::size_t edges = rng.UniformIndex(2 * n);
    for (std::size_t e = 0; e < edges; ++e) {
      graph.AddEdge(rng.UniformIndex(n), rng.UniformIndex(n));
    }
    EXPECT_EQ(IsAcyclicByScc(graph), !HasCycle(graph)) << "round " << round;
  }
}

// --------------------------------------------------------------- closure

TEST(Closure, ChainReachability) {
  const Digraph chain = Chain(5);
  std::vector<NodeId> order = {0, 1, 2, 3, 4};
  const TransitiveClosure closure =
      TransitiveClosure::FromDagOrder(chain, order);
  EXPECT_TRUE(closure.Reaches(0, 4));
  EXPECT_TRUE(closure.Reaches(2, 3));
  EXPECT_FALSE(closure.Reaches(3, 2));
  EXPECT_FALSE(closure.Reaches(0, 0));  // irreflexive
}

TEST(Closure, CyclicGraphViaDfsVariant) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  const TransitiveClosure closure = TransitiveClosure::FromAnyGraph(graph);
  EXPECT_TRUE(closure.Reaches(0, 1));
  EXPECT_TRUE(closure.Reaches(1, 0));
  EXPECT_TRUE(closure.Reaches(0, 0));  // reachable through the cycle
  EXPECT_FALSE(closure.Reaches(2, 0));
}

TEST(Closure, BothMethodsAgreeOnRandomDags) {
  Rng rng(654);
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 2 + rng.UniformIndex(12);
    Digraph dag(n);
    for (std::size_t e = 0; e < 2 * n; ++e) {
      NodeId a = rng.UniformIndex(n);
      NodeId b = rng.UniformIndex(n);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      dag.AddEdge(a, b);
    }
    std::vector<NodeId> order(n);
    for (NodeId v = 0; v < n; ++v) order[v] = v;
    const TransitiveClosure fast = TransitiveClosure::FromDagOrder(dag, order);
    const TransitiveClosure slow = TransitiveClosure::FromAnyGraph(dag);
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        EXPECT_EQ(fast.Reaches(a, b), slow.Reaches(a, b))
            << "round " << round << " " << a << "->" << b;
      }
    }
  }
}

TEST(Closure, RowExposesReachableSet) {
  const Digraph chain = Chain(4);
  const TransitiveClosure closure = TransitiveClosure::FromAnyGraph(chain);
  EXPECT_EQ(closure.Row(1).ToVector(), (std::vector<std::size_t>{2, 3}));
}

}  // namespace
}  // namespace relser
