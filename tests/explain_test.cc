// Tests for the rejection explainer.
#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/paper_examples.h"
#include "model/text.h"
#include "spec/builders.h"

namespace relser {
namespace {

TEST(Explain, AcceptedScheduleSaysSo) {
  const PaperExample fig = Figure1();
  const RejectionExplanation explanation =
      ExplainRejection(fig.txns, fig.schedule("Srs"), fig.spec);
  EXPECT_TRUE(explanation.relatively_serializable);
  EXPECT_TRUE(explanation.cycle.empty());
  EXPECT_NE(explanation.text.find("relatively serializable"),
            std::string::npos);
}

TEST(Explain, CycleArcsAreAnnotated) {
  // The classic sandwich under absolute atomicity.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w2[y] r1[y]");
  const RejectionExplanation explanation =
      ExplainRejection(*txns, *schedule, AbsoluteSpec(*txns));
  EXPECT_FALSE(explanation.relatively_serializable);
  ASSERT_GE(explanation.cycle.size(), 2u);
  // Every cycle arc is a real arc and consecutive arcs chain.
  for (std::size_t i = 0; i < explanation.cycle.size(); ++i) {
    const ExplainedArc& arc = explanation.cycle[i];
    EXPECT_NE(arc.kinds, 0);
    const ExplainedArc& next =
        explanation.cycle[(i + 1) % explanation.cycle.size()];
    EXPECT_EQ(arc.to, next.from);
    // F/B arcs carry their inducing unit.
    if (arc.kinds & (kPushForwardArc | kPullBackwardArc)) {
      if (arc.unit.has_value()) {
        EXPECT_LE(arc.unit->first, arc.unit->last);
      }
    }
  }
  EXPECT_NE(explanation.text.find("NOT relatively serializable"),
            std::string::npos);
  EXPECT_NE(explanation.text.find("Theorem 1"), std::string::npos);
}

TEST(Explain, UnitRenderingNamesTheRightTransactions) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w2[y] r1[y]");
  const RejectionExplanation explanation =
      ExplainRejection(*txns, *schedule, AbsoluteSpec(*txns));
  ASSERT_FALSE(explanation.relatively_serializable);
  bool saw_unit_annotation = false;
  for (const ExplainedArc& arc : explanation.cycle) {
    if (arc.unit.has_value()) {
      saw_unit_annotation = true;
      EXPECT_NE(arc.unit_txn, arc.observer_txn);
    }
  }
  EXPECT_TRUE(saw_unit_annotation);
  EXPECT_NE(explanation.text.find("via unit"), std::string::npos);
}

}  // namespace
}  // namespace relser
