// Tests for workload generation: random transactions/schedules, the
// scenario builders (banking, CAD), and their specification structure.
#include <gtest/gtest.h>

#include <map>

#include "core/checkers.h"
#include "model/text.h"
#include "workload/generator.h"
#include "workload/scenarios.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(Generator, RespectsParameters) {
  Rng rng(10);
  WorkloadParams wp;
  wp.txn_count = 7;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 5;
  wp.object_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  EXPECT_EQ(txns.txn_count(), 7u);
  EXPECT_EQ(txns.object_count(), 4u);
  EXPECT_TRUE(txns.Validate().ok());
  for (const Transaction& txn : txns.txns()) {
    EXPECT_GE(txn.size(), 2u);
    EXPECT_LE(txn.size(), 5u);
    for (const Operation& op : txn.ops()) {
      EXPECT_LT(op.object, 4u);
    }
  }
}

TEST(Generator, AvoidImmediateRepeatHolds) {
  Rng rng(11);
  WorkloadParams wp;
  wp.txn_count = 10;
  wp.min_ops_per_txn = 6;
  wp.max_ops_per_txn = 6;
  wp.object_count = 3;
  wp.avoid_immediate_repeat = true;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  for (const Transaction& txn : txns.txns()) {
    for (std::size_t k = 1; k < txn.size(); ++k) {
      EXPECT_NE(txn.op(k).object, txn.op(k - 1).object);
    }
  }
}

TEST(Generator, ReadRatioExtremes) {
  Rng rng(12);
  WorkloadParams wp;
  wp.txn_count = 5;
  wp.read_ratio = 1.0;
  const TransactionSet reads = GenerateTransactions(wp, &rng);
  for (const Transaction& txn : reads.txns()) {
    for (const Operation& op : txn.ops()) {
      EXPECT_TRUE(op.is_read());
    }
  }
  wp.read_ratio = 0.0;
  const TransactionSet writes = GenerateTransactions(wp, &rng);
  for (const Transaction& txn : writes.txns()) {
    for (const Operation& op : txn.ops()) {
      EXPECT_TRUE(op.is_write());
    }
  }
}

TEST(Generator, DeterministicForEqualSeeds) {
  WorkloadParams wp;
  wp.txn_count = 5;
  Rng a(55);
  Rng b(55);
  const TransactionSet ta = GenerateTransactions(wp, &a);
  const TransactionSet tb = GenerateTransactions(wp, &b);
  ASSERT_EQ(ta.txn_count(), tb.txn_count());
  for (TxnId t = 0; t < ta.txn_count(); ++t) {
    EXPECT_EQ(ta.txn(t).ops(), tb.txn(t).ops());
  }
}

TEST(RandomSchedules, AlwaysValidAndComplete) {
  Rng rng(13);
  WorkloadParams wp;
  wp.txn_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  for (int round = 0; round < 50; ++round) {
    const Schedule schedule = RandomSchedule(txns, &rng);
    EXPECT_EQ(schedule.size(), OpIndexer(txns).total_ops());
  }
}

TEST(RandomSchedules, InterleavingsAreRoughlyUniform) {
  // Two transactions of 2 ops each: 6 interleavings, each ~1/6.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[y] w2[y]\n");
  Rng rng(14);
  std::map<std::string, int> counts;
  constexpr int kDraws = 12000;
  for (int i = 0; i < kDraws; ++i) {
    counts[ToString(*txns, RandomSchedule(*txns, &rng))]++;
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [text, count] : counts) {
    EXPECT_NEAR(count, kDraws / 6, 250) << text;
  }
}

TEST(RandomSchedules, SerialSchedulesAreSerial) {
  Rng rng(15);
  WorkloadParams wp;
  wp.txn_count = 5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(RandomSerialSchedule(txns, &rng).IsSerial());
  }
}

TEST(RandomSchedules, PerturbKeepsValidity) {
  Rng rng(16);
  WorkloadParams wp;
  wp.txn_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const Schedule base = RandomSerialSchedule(txns, &rng);
  for (const std::size_t swaps : {0u, 1u, 5u, 50u}) {
    const Schedule perturbed = PerturbSchedule(txns, base, swaps, &rng);
    EXPECT_EQ(perturbed.size(), base.size());
    // Validity is enforced internally; also confirm program order here.
    std::vector<std::uint32_t> next(txns.txn_count(), 0);
    for (const Operation& op : perturbed.ops()) {
      EXPECT_EQ(op.index, next[op.txn]++);
    }
  }
}

// --------------------------------------------------------------- banking

TEST(Banking, StructureMatchesParams) {
  BankingParams params;
  params.families = 3;
  params.accounts_per_family = 2;
  params.customers_per_family = 2;
  params.transfers_per_customer = 2;
  params.credit_audits = 2;
  params.include_bank_audit = true;
  Rng rng(17);
  const BankingScenario scenario = MakeBankingScenario(params, &rng);
  EXPECT_EQ(scenario.txns.txn_count(), 3u * 2u + 2u + 1u);
  EXPECT_EQ(scenario.txns.object_count(), 6u);
  EXPECT_TRUE(scenario.txns.Validate().ok());
  EXPECT_TRUE(scenario.spec.ValidateAgainst(scenario.txns).ok());
  // Roles and labels are aligned.
  EXPECT_EQ(scenario.role.size(), scenario.txns.txn_count());
  EXPECT_EQ(scenario.label.size(), scenario.txns.txn_count());
  EXPECT_EQ(scenario.role.back(), BankingRole::kBankAudit);
}

TEST(Banking, BankAuditIsAbsolutelyAtomic) {
  BankingParams params;
  Rng rng(18);
  const BankingScenario scenario = MakeBankingScenario(params, &rng);
  TxnId audit = 0;
  for (TxnId t = 0; t < scenario.txns.txn_count(); ++t) {
    if (scenario.role[t] == BankingRole::kBankAudit) audit = t;
  }
  for (TxnId j = 0; j < scenario.txns.txn_count(); ++j) {
    if (j == audit) continue;
    EXPECT_EQ(scenario.spec.UnitCount(audit, j), 1u);
    EXPECT_EQ(scenario.spec.UnitCount(j, audit), 1u);
  }
}

TEST(Banking, SameFamilyCustomersFullyInterleave) {
  BankingParams params;
  params.customers_per_family = 3;
  Rng rng(19);
  const BankingScenario scenario = MakeBankingScenario(params, &rng);
  for (TxnId i = 0; i < scenario.txns.txn_count(); ++i) {
    for (TxnId j = 0; j < scenario.txns.txn_count(); ++j) {
      if (i == j) continue;
      if (scenario.role[i] == BankingRole::kCustomer &&
          scenario.role[j] == BankingRole::kCustomer &&
          scenario.family[i] == scenario.family[j]) {
        EXPECT_EQ(scenario.spec.UnitCount(i, j), scenario.txns.txn(i).size());
      }
    }
  }
}

TEST(Banking, CustomerExposesTransferBoundariesToCreditAudit) {
  BankingParams params;
  params.transfers_per_customer = 3;
  params.credit_audits = 1;
  Rng rng(20);
  const BankingScenario scenario = MakeBankingScenario(params, &rng);
  for (TxnId i = 0; i < scenario.txns.txn_count(); ++i) {
    if (scenario.role[i] != BankingRole::kCustomer ||
        scenario.family[i] != 0) {
      continue;
    }
    for (TxnId j = 0; j < scenario.txns.txn_count(); ++j) {
      if (scenario.role[j] != BankingRole::kCreditAudit ||
          scenario.family[j] != 0) {
        continue;
      }
      // 3 transfers of 4 ops -> units of 4, i.e. 3 units.
      EXPECT_EQ(scenario.spec.UnitCount(i, j), 3u);
      const auto units = scenario.spec.Units(i, j);
      for (const UnitRange& unit : units) {
        EXPECT_EQ(unit.last - unit.first + 1, 4u);
      }
    }
  }
}

TEST(Banking, CrossFamilyCustomersStayAtomic) {
  BankingParams params;
  params.families = 2;
  Rng rng(21);
  const BankingScenario scenario = MakeBankingScenario(params, &rng);
  for (TxnId i = 0; i < scenario.txns.txn_count(); ++i) {
    for (TxnId j = 0; j < scenario.txns.txn_count(); ++j) {
      if (i == j) continue;
      if (scenario.role[i] == BankingRole::kCustomer &&
          scenario.role[j] == BankingRole::kCustomer &&
          scenario.family[i] != scenario.family[j]) {
        EXPECT_EQ(scenario.spec.UnitCount(i, j), 1u);
      }
    }
  }
}

// ------------------------------------------------------------------- cad

TEST(Cad, StructureMatchesParams) {
  CadParams params;
  params.teams = 2;
  params.designers_per_team = 3;
  params.phases = 2;
  params.include_release = true;
  Rng rng(22);
  const CadScenario scenario = MakeCadScenario(params, &rng);
  EXPECT_EQ(scenario.txns.txn_count(), 7u);
  EXPECT_TRUE(scenario.txns.Validate().ok());
  EXPECT_EQ(scenario.team.back(), CadScenario::kGlobal);
  // Designer transactions have phases * 3 ops (shared read + RMW).
  EXPECT_EQ(scenario.txns.txn(0).size(), 6u);
}

TEST(Cad, TeammatesInterleaveFreelyCrossTeamAtPhaseBoundaries) {
  CadParams params;
  params.teams = 2;
  params.designers_per_team = 2;
  params.phases = 3;
  Rng rng(23);
  const CadScenario scenario = MakeCadScenario(params, &rng);
  for (TxnId i = 0; i < scenario.txns.txn_count(); ++i) {
    if (scenario.team[i] == CadScenario::kGlobal) continue;
    for (TxnId j = 0; j < scenario.txns.txn_count(); ++j) {
      if (i == j || scenario.team[j] == CadScenario::kGlobal) continue;
      if (scenario.team[i] == scenario.team[j]) {
        EXPECT_EQ(scenario.spec.UnitCount(i, j), scenario.txns.txn(i).size());
      } else {
        EXPECT_EQ(scenario.spec.UnitCount(i, j), params.phases);
      }
    }
  }
}

TEST(Cad, ReleaseTransactionIsAtomicBothWays) {
  CadParams params;
  Rng rng(24);
  const CadScenario scenario = MakeCadScenario(params, &rng);
  const TxnId release =
      static_cast<TxnId>(scenario.txns.txn_count() - 1);
  ASSERT_EQ(scenario.team[release], CadScenario::kGlobal);
  for (TxnId j = 0; j < release; ++j) {
    EXPECT_EQ(scenario.spec.UnitCount(release, j), 1u);
    EXPECT_EQ(scenario.spec.UnitCount(j, release), 1u);
  }
}

TEST(Scenarios, SerialExecutionsAreAlwaysAccepted) {
  Rng rng(25);
  const BankingScenario banking = MakeBankingScenario(BankingParams{}, &rng);
  const CadScenario cad = MakeCadScenario(CadParams{}, &rng);
  EXPECT_TRUE(IsRelativelyAtomic(banking.txns,
                                 RandomSerialSchedule(banking.txns, &rng),
                                 banking.spec));
  EXPECT_TRUE(IsRelativelyAtomic(
      cad.txns, RandomSerialSchedule(cad.txns, &rng), cad.spec));
}

}  // namespace
}  // namespace relser
