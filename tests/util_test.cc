// Unit tests for the util substrate: Status/Result, strings, RNG, Zipf,
// DenseBitset, AsciiTable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/bitset.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/zipf.h"

namespace relser {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad spec");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad spec");
  EXPECT_EQ(status.ToString(), "invalid_argument: bad spec");
}

TEST(Status, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Status, StreamInsertion) {
  std::ostringstream os;
  os << Status::OutOfRange("position 7");
  EXPECT_EQ(os.str(), "out_of_range: position 7");
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Result, MovesValueOut) {
  Result<std::string> result(std::string(1000, 'x'));
  const std::string moved = *std::move(result);
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(Result, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

// --------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\n x y \r"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("abc"), "abc");
}

TEST(Strings, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(Strings, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("T", 3, " has ", 2.5, " units"), "T3 has 2.5 units");
  EXPECT_EQ(StrCat(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("Atomicity(T1,T2)", "Atomicity(T"));
  EXPECT_FALSE(StartsWith("Atom", "Atomicity"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.Next() == b.Next();
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  const std::uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(7);
  EXPECT_EQ(rng.Next(), first);
}

TEST(Rng, UniformU64StaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformU64(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t draw = rng.UniformInt(-3, 3);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 3);
    saw_lo = saw_lo || draw == -3;
    saw_hi = saw_hi || draw == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double draw = rng.UniformDouble();
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(12);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.Bernoulli(0.5);
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(14);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng rng(15);
  Rng child = rng.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += rng.Next() == child.Next();
  }
  EXPECT_LT(equal, 2);
}

// ------------------------------------------------------------------ zipf

TEST(Zipf, ThetaZeroIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.1, 1e-12);
  }
}

TEST(Zipf, ProbabilitiesSumToOne) {
  const ZipfDistribution zipf(37, 0.9);
  double total = 0;
  for (std::size_t k = 0; k < zipf.n(); ++k) {
    total += zipf.Probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SkewMakesHeadHeavier) {
  const ZipfDistribution mild(20, 0.5);
  const ZipfDistribution heavy(20, 1.5);
  EXPECT_GT(heavy.Probability(0), mild.Probability(0));
  EXPECT_LT(heavy.Probability(19), mild.Probability(19));
}

TEST(Zipf, ProbabilitiesMonotoneNonIncreasing) {
  const ZipfDistribution zipf(15, 1.0);
  for (std::size_t k = 1; k < zipf.n(); ++k) {
    EXPECT_GE(zipf.Probability(k - 1), zipf.Probability(k) - 1e-12);
  }
}

TEST(Zipf, SamplesMatchDistributionRoughly) {
  const ZipfDistribution zipf(5, 1.0);
  Rng rng(77);
  std::vector<int> counts(5, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Sample(&rng)];
  }
  for (std::size_t k = 0; k < 5; ++k) {
    const double expected = zipf.Probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 10);
  }
}

TEST(Zipf, SingleItem) {
  const ZipfDistribution zipf(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

// ---------------------------------------------------------------- bitset

TEST(Bitset, SetTestReset) {
  DenseBitset bits(130);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(63));
  bits.Reset(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(Bitset, ClearZeroesEverything) {
  DenseBitset bits(70);
  for (std::size_t i = 0; i < 70; i += 3) bits.Set(i);
  bits.Clear();
  EXPECT_TRUE(bits.None());
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(Bitset, UnionWith) {
  DenseBitset a(100);
  DenseBitset b(100);
  a.Set(1);
  a.Set(65);
  b.Set(2);
  b.Set(65);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_TRUE(a.Test(65));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(Bitset, IntersectWithAndIntersects) {
  DenseBitset a(100);
  DenseBitset b(100);
  a.Set(10);
  a.Set(90);
  b.Set(90);
  EXPECT_TRUE(a.Intersects(b));
  a.IntersectWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<std::size_t>{90}));
  DenseBitset c(100);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(Bitset, FindNextWalksSetBits) {
  DenseBitset bits(200);
  bits.Set(3);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_EQ(bits.FindNext(0), 3u);
  EXPECT_EQ(bits.FindNext(4), 63u);
  EXPECT_EQ(bits.FindNext(64), 64u);
  EXPECT_EQ(bits.FindNext(65), 199u);
  EXPECT_EQ(bits.FindNext(200), 200u);  // = size(): none
}

TEST(Bitset, ToVectorAscending) {
  DenseBitset bits(128);
  bits.Set(127);
  bits.Set(0);
  bits.Set(64);
  EXPECT_EQ(bits.ToVector(), (std::vector<std::size_t>{0, 64, 127}));
}

TEST(Bitset, EqualityRequiresSameSizeAndBits) {
  DenseBitset a(64);
  DenseBitset b(64);
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_EQ(a, b);
  DenseBitset c(65);
  EXPECT_FALSE(a == c);
}

TEST(Bitset, EmptyBitset) {
  DenseBitset bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_TRUE(bits.None());
  EXPECT_EQ(bits.FindNext(0), 0u);
}

// ----------------------------------------------------------------- table

TEST(Table, PrintAlignsColumns) {
  AsciiTable table({"name", "v"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 1  |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22 |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  AsciiTable table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowCountTracksRows) {
  AsciiTable table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0), "2.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace relser
