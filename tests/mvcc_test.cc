// Tests for the MVCC snapshot-read fast path (core/mvcc/):
//
//   * VersionStore unit behavior — settledness counters, watermark,
//     version-chain visibility, chain stats, escalation counting.
//   * The write-skew shape: a read-only transaction raced by live
//     writers of its read set MUST escalate; once the writers have
//     finished it snapshot-admits arc-free.
//   * Differential soundness: >= 500 randomized workloads through the
//     SnapshotRsrChecker facade; every merged committed history must
//     replay relatively serializably through a fresh single-version
//     checker, and fully-committed histories are additionally checked
//     against the brute-force oracle (core/brute.h).
//   * Ratio-0 bit-identity: with no read-only transactions the fast
//     path is invisible in ConcurrentAdmitter AND ShardedAdmitter,
//     decision for decision, under a deterministic lock-step feed.
//   * Concurrent stress (run under TSan in ci.sh): client fleets over
//     both admitters with snapshot_reads on; replay + completeness.
//   * Trace round-trip: snapshot_read events validate against the
//     trace-format schema, summarize, and ingest into the auditor.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "audit/ingest.h"
#include "core/brute.h"
#include "core/mvcc/snapshot.h"
#include "core/mvcc/version_store.h"
#include "core/online.h"
#include "exec/backoff.h"
#include "model/op_indexer.h"
#include "model/schedule.h"
#include "obs/export.h"
#include "obs/inspect.h"
#include "obs/trace.h"
#include "sched/admitter.h"
#include "shard/router.h"
#include "shard/sharded_admitter.h"
#include "spec/atomicity_spec.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/shard_gen.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(VersionStore, SettlednessAndWatermark) {
  TransactionSet txns;
  txns.AddObjects(2);
  Transaction* t0 = txns.AddTransaction();  // writer of x
  t0->Write(0);
  Transaction* t1 = txns.AddTransaction();  // reads x: unsettled until T0 ends
  t1->Read(0);
  Transaction* t2 = txns.AddTransaction();  // reads y: no static writer
  t2->Read(1);

  VersionStore store(txns);
  EXPECT_FALSE(store.IsReadOnly(0));
  EXPECT_TRUE(store.IsReadOnly(1));
  EXPECT_TRUE(store.IsReadOnly(2));
  EXPECT_EQ(store.UnfinishedWriters(0), 1u);
  EXPECT_EQ(store.UnfinishedWriters(1), 0u);
  EXPECT_FALSE(store.ReadSetSettled(1));
  EXPECT_TRUE(store.ReadSetSettled(2));
  EXPECT_EQ(store.watermark(), 0u);

  store.NoteCommit(0);
  EXPECT_EQ(store.watermark(), 1u);
  EXPECT_TRUE(store.ReadSetSettled(1));
  EXPECT_EQ(store.UnfinishedWriters(0), 0u);
  // Idempotent: a second NoteCommit must not double-decrement or
  // double-append.
  store.NoteCommit(0);
  EXPECT_EQ(store.watermark(), 1u);
  EXPECT_EQ(store.ChainLength(0), 1u);

  // Visibility: before epoch 1 only the initial version (0); from
  // epoch 1 on, T0's version (writer + 1).
  EXPECT_EQ(store.VisibleWriter(0, 0), 0u);
  EXPECT_EQ(store.VisibleWriter(0, 1), 1u);
  EXPECT_EQ(store.VisibleWriter(1, 1), 0u);  // y never written

  const VersionChainStats stats = store.ChainStats();
  EXPECT_EQ(stats.versions, 1u);
  EXPECT_EQ(stats.objects_with_versions, 1u);
  EXPECT_EQ(stats.max_chain, 1u);
}

TEST(VersionStore, AbortSettlesWithoutVersions) {
  TransactionSet txns;
  txns.AddObjects(1);
  Transaction* t0 = txns.AddTransaction();
  t0->Write(0);
  Transaction* t1 = txns.AddTransaction();
  t1->Read(0);

  VersionStore store(txns);
  EXPECT_FALSE(store.ReadSetSettled(1));
  store.NoteAbort(0);
  // An aborted writer settles the read set but appends no version.
  EXPECT_TRUE(store.ReadSetSettled(1));
  EXPECT_EQ(store.watermark(), 0u);
  EXPECT_EQ(store.ChainLength(0), 0u);
}

TEST(VersionStore, EscalationCountsOnce) {
  TransactionSet txns;
  txns.AddObjects(1);
  Transaction* t0 = txns.AddTransaction();
  t0->Read(0);

  VersionStore store(txns);
  EXPECT_TRUE(store.TryCountEscalation(0));
  EXPECT_FALSE(store.TryCountEscalation(0));
  EXPECT_EQ(store.snapshot_escalations(), 1u);
}

// The write-skew shape: T0: r(x) w(y); T1: r(y) w(x); R: r(x) r(y).
// While either writer is unfinished R must escalate; with both writers
// finished R snapshot-admits and contributes zero arcs.
TransactionSet WriteSkewSet() {
  TransactionSet txns;
  txns.AddObjects(2);  // 0 = x, 1 = y
  Transaction* t0 = txns.AddTransaction();
  t0->Read(0);
  t0->Write(1);
  Transaction* t1 = txns.AddTransaction();
  t1->Read(1);
  t1->Write(0);
  Transaction* reader = txns.AddTransaction();
  reader->Read(0);
  reader->Read(1);
  return txns;
}

TEST(SnapshotChecker, WriteSkewReaderEscalatesWhileWritersLive) {
  const TransactionSet txns = WriteSkewSet();
  const AtomicitySpec spec(txns);
  SnapshotRsrChecker checker(txns, spec);
  // Writers have started but not finished when R classifies.
  ASSERT_TRUE(checker.Submit(txns.txn(0).op(0)).ok());
  ASSERT_TRUE(checker.Submit(txns.txn(1).op(0)).ok());
  ASSERT_TRUE(checker.Submit(txns.txn(2).op(0)).ok());
  EXPECT_EQ(checker.Classification(2),
            SnapshotRsrChecker::TxnClass::kEscalated);
  EXPECT_EQ(checker.snapshot_admits(), 0u);
  EXPECT_EQ(checker.snapshot_escalations(), 1u);
}

TEST(SnapshotChecker, WriteSkewReaderSnapshotAdmitsOnceWritersFinished) {
  const TransactionSet txns = WriteSkewSet();
  const AtomicitySpec spec(txns);
  SnapshotRsrChecker checker(txns, spec);
  for (TxnId t = 0; t < 2; ++t) {
    for (const Operation& op : txns.txn(t).ops()) {
      ASSERT_TRUE(checker.Submit(op).ok());
    }
    ASSERT_TRUE(checker.TxnCommitted(t));
  }
  const std::size_t arcs_before_reader = checker.checker_arcs_submitted();
  ASSERT_TRUE(checker.Submit(txns.txn(2).op(0)).ok());
  ASSERT_TRUE(checker.Submit(txns.txn(2).op(1)).ok());
  EXPECT_EQ(checker.Classification(2), SnapshotRsrChecker::TxnClass::kSnapshot);
  EXPECT_TRUE(checker.TxnCommitted(2));
  EXPECT_EQ(checker.snapshot_admits(), 1u);
  // Zero arcs from the snapshot admission.
  EXPECT_EQ(checker.checker_arcs_submitted(), arcs_before_reader);

  // The merged history replays through a fresh single-version checker.
  const std::vector<Operation> log = checker.CommittedLog();
  EXPECT_EQ(log.size(), 6u);
  OnlineRsrChecker replay(txns, spec);
  for (const Operation& op : log) ASSERT_TRUE(replay.TryAppend(op).ok());
}

// Differential soundness over >= 500 randomized workloads: the facade's
// merged committed history must always replay through a fresh
// single-version checker; fully-committed histories must additionally
// satisfy the brute-force relative-serializability oracle.
TEST(SnapshotChecker, DifferentialVsReplayAndBruteForce) {
  const Rng base(0x36CCD1FFULL);
  std::size_t snapshot_admits_total = 0;
  std::size_t escalations_total = 0;
  std::size_t brute_checked = 0;
  for (std::size_t iter = 0; iter < 500; ++iter) {
    Rng rng = base.Split(iter);
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.min_ops_per_txn = 2;
    wp.max_ops_per_txn = 4;
    wp.object_count = 2 + iter % 5;
    wp.read_ratio = 0.6;
    wp.read_only_txn_ratio = 0.5;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    const Schedule feed = RandomSchedule(txns, &rng);

    SnapshotRsrChecker checker(txns, spec, {iter % 2 == 1});  // alt. SoA
    for (const Operation& op : feed.ops()) checker.Submit(op);
    snapshot_admits_total += checker.snapshot_admits();
    escalations_total += checker.snapshot_escalations();

    const std::vector<Operation> log = checker.CommittedLog();
    OnlineRsrChecker replay(txns, spec);
    std::vector<std::uint32_t> ops_of(txns.txn_count(), 0);
    for (const Operation& op : log) {
      ASSERT_TRUE(replay.TryAppend(op).ok())
          << "iter " << iter << ": merged history replay rejected";
      ++ops_of[op.txn];
    }
    bool all_committed = true;
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      if (checker.TxnCommitted(t)) {
        ASSERT_EQ(ops_of[t], txns.txn(t).size()) << "iter " << iter;
      } else {
        ASSERT_EQ(ops_of[t], 0u) << "iter " << iter;
        all_committed = false;
      }
    }
    if (!all_committed) continue;
    // Complete history: the brute-force oracle must agree it is
    // relatively serializable.
    auto schedule = Schedule::Over(txns, log);
    ASSERT_TRUE(schedule.ok()) << "iter " << iter;
    const BruteForceResult verdict = BruteForceRelativelySerializable(
        txns, *schedule, spec, /*max_states=*/500000);
    ASSERT_TRUE(verdict.decided.has_value()) << "iter " << iter;
    EXPECT_TRUE(verdict.IsYes())
        << "iter " << iter << ": admitted a non-RSR history";
    ++brute_checked;
  }
  // The sweep must actually exercise both paths and the oracle.
  EXPECT_GT(snapshot_admits_total, 100u);
  EXPECT_GT(escalations_total, 20u);
  EXPECT_GT(brute_checked, 100u);
}

// Ratio 0 (every transaction has a writer): the fast path must be
// bit-invisible for both admitters under a lock-step deterministic feed.
template <typename Admitter>
bool LockStepIdentical(const TransactionSet& txns, Admitter& on, Admitter& off,
                       std::size_t round) {
  std::vector<std::uint32_t> next(txns.txn_count(), 0);
  std::vector<std::uint8_t> dead(txns.txn_count(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      if (dead[t] != 0 || next[t] >= txns.txn(t).size()) continue;
      const Operation& op = txns.txn(t).op(next[t]);
      const AdmitResult a = on.SubmitAndWait(op);
      const AdmitResult b = off.SubmitAndWait(op);
      EXPECT_EQ(a.outcome, b.outcome)
          << "round " << round << " T" << t << " op " << next[t];
      if (a.outcome != b.outcome) return false;
      ++next[t];
      if (!a.ok()) dead[t] = 1;
      progress = true;
    }
  }
  on.Stop();
  off.Stop();
  const std::vector<Operation> log_on = on.CommittedLog();
  const std::vector<Operation> log_off = off.CommittedLog();
  const OpIndexer indexer(txns);
  if (log_on.size() != log_off.size()) return false;
  for (std::size_t i = 0; i < log_on.size(); ++i) {
    if (indexer.GlobalId(log_on[i]) != indexer.GlobalId(log_off[i])) {
      return false;
    }
  }
  return true;
}

TEST(SnapshotAdmitters, RatioZeroBitIdentityConcurrent) {
  const Rng base(0x1D36CC01ULL);
  for (std::size_t round = 0; round < 8; ++round) {
    Rng rng = base.Split(round);
    WorkloadParams wp;
    wp.txn_count = 12;
    wp.object_count = 8;
    wp.zipf_theta = 0.9;
    wp.read_only_txn_ratio = 0.0;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    AdmitterOptions on_opts;
    on_opts.snapshot_reads = true;
    ConcurrentAdmitter on(txns, spec, on_opts);
    ConcurrentAdmitter off(txns, spec);
    EXPECT_TRUE(LockStepIdentical(txns, on, off, round));
  }
}

TEST(SnapshotAdmitters, RatioZeroBitIdentitySharded) {
  const Rng base(0x1D36CC02ULL);
  for (std::size_t round = 0; round < 8; ++round) {
    Rng rng = base.Split(round);
    ShardedWorkloadParams wp;
    wp.txn_count = 12;
    wp.shard_count = 4;
    wp.objects_per_shard = 4;
    wp.zipf_theta = 0.9;
    wp.read_only_txn_ratio = 0.0;
    const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    ShardedAdmitterOptions on_opts;
    on_opts.snapshot_reads = true;
    ShardedAdmitter on(
        txns, spec,
        ShardRouter(txns.object_count(), 4, ShardStrategy::kRange), on_opts);
    ShardedAdmitter off(
        txns, spec,
        ShardRouter(txns.object_count(), 4, ShardStrategy::kRange));
    EXPECT_TRUE(LockStepIdentical(txns, on, off, round));
  }
}

// Concurrent stress with the fast path on (exercised under TSan by
// ci.sh): a client fleet over a read-heavy workload; the merged
// committed history must replay, complete, through a fresh checker.
template <typename Admitter>
void FleetAndGate(const TransactionSet& txns, const AtomicitySpec& spec,
                  Admitter& admitter, std::size_t clients,
                  std::uint64_t seed) {
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      Backoff backoff(seed ^ (0xF1EE7000ULL + c));
      for (TxnId t = static_cast<TxnId>(c); t < txns.txn_count();
           t = static_cast<TxnId>(t + clients)) {
        for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
          if (!admitter.SubmitWithBackoff(txns.txn(t).op(i), backoff).ok()) {
            break;
          }
        }
        backoff.Reset();
      }
    });
  }
  for (std::thread& client : fleet) client.join();
  admitter.Stop();

  const std::vector<Operation> log = admitter.CommittedLog();
  OnlineRsrChecker replay(txns, spec);
  std::vector<std::uint32_t> ops_of(txns.txn_count(), 0);
  for (const Operation& op : log) {
    ASSERT_TRUE(replay.TryAppend(op).ok()) << "merged history replay rejected";
    ++ops_of[op.txn];
  }
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    if (admitter.TxnCommitted(t)) {
      EXPECT_EQ(ops_of[t], txns.txn(t).size()) << "T" << t;
    } else {
      EXPECT_EQ(ops_of[t], 0u) << "T" << t;
    }
  }
}

TEST(SnapshotAdmitters, ConcurrentFleetReadHeavySound) {
  Rng rng(0x5EED36CCULL);
  WorkloadParams wp;
  wp.txn_count = 256;
  wp.object_count = 256;
  wp.read_ratio = 0.6;
  wp.read_only_txn_ratio = 0.9;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
  AdmitterOptions options;
  options.snapshot_reads = true;
  ConcurrentAdmitter admitter(txns, spec, options);
  FleetAndGate(txns, spec, admitter, 4, 0xC0FFEEULL);
  EXPECT_GT(admitter.snapshot_admits(), 0u);
}

TEST(SnapshotAdmitters, ShardedFleetReadHeavySound) {
  Rng rng(0x5EED36CDULL);
  ShardedWorkloadParams wp;
  wp.txn_count = 256;
  wp.shard_count = 4;
  wp.objects_per_shard = 64;
  wp.read_ratio = 0.6;
  wp.read_only_txn_ratio = 0.9;
  const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
  ShardedAdmitterOptions options;
  options.snapshot_reads = true;
  ShardedAdmitter admitter(
      txns, spec, ShardRouter(txns.object_count(), 4, ShardStrategy::kRange),
      options);
  FleetAndGate(txns, spec, admitter, 4, 0xC0FFEFULL);
  EXPECT_GT(admitter.snapshot_admits(), 0u);
}

// snapshot_read events survive the full observability round-trip:
// schema validation, summary, and auditor ingestion.
TEST(SnapshotAdmitters, TraceRoundTripWithSnapshotReads) {
  Rng rng(0x7ACE36CCULL);
  WorkloadParams wp;
  wp.txn_count = 32;
  wp.object_count = 64;
  wp.read_only_txn_ratio = 0.8;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
  Tracer tracer(TraceLevel::kFull);
  AdmitterOptions options;
  options.snapshot_reads = true;
  options.tracer = &tracer;
  {
    ConcurrentAdmitter admitter(txns, spec, options);
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      for (const Operation& op : txns.txn(t).ops()) {
        if (!admitter.SubmitAndWait(op).ok()) break;
      }
    }
    admitter.Stop();
    ASSERT_GT(admitter.snapshot_admits(), 0u);
  }
  const std::string jsonl = TraceToJsonl(tracer, txns);
  const TraceValidation validation = ValidateTraceJsonl(jsonl);
  EXPECT_TRUE(validation.ok) << (validation.errors.empty()
                                     ? "unknown"
                                     : validation.errors.front());
  const TraceSummary summary = SummarizeTraceJsonl(jsonl);
  EXPECT_GT(summary.snapshot_reads, 0u);
  // The auditor ingests the trace (snapshot_read lines are skipped as
  // non-admission events, not rejected).
  const auto audit_input = IngestHistoryText(jsonl);
  EXPECT_TRUE(audit_input.ok()) << audit_input.status().ToString();
}

}  // namespace
}  // namespace relser
