// Differential tests for the SoA/SIMD admission hot path.
//
// SoaRsrChecker's contract is *bit-identical admission*: every
// accept/reject/retry decision, every witnessing arc (from, to, kinds),
// and every admission counter must match OnlineRsrChecker — the
// frontier-pruned reference that PR 1's harness already pinned against a
// from-scratch Definition 3 oracle — at every single operation. The
// sweeps below feed identical random workloads through both checkers op
// by op and compare after each step, repeated for every compiled SIMD
// tier (the dispatch table is re-pointed with SetSimdTier, so the scalar
// fallback is exercised even on AVX2 hardware; CI additionally runs the
// whole binary under RELSER_FORCE_SCALAR=1).
//
// DenseBitset word-boundary tests ride along: the SoA path drives raw
// words() through the same kernels, so sizes straddling 64-bit word
// boundaries (0/1/63/64/65/...) are checked against naive per-bit
// references per tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/online.h"
#include "core/soa/hotpath.h"
#include "model/op_indexer.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/simd.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

AtomicitySpec DrawSpec(const TransactionSet& txns, Rng* rng) {
  switch (rng->UniformIndex(4)) {
    case 0:
      return RandomSpec(txns, rng->UniformDouble(), rng);
    case 1:
      return RandomUniformObserverSpec(txns, rng->UniformDouble(), rng);
    case 2:
      return RandomCompatibilitySetSpec(txns, 1 + rng->UniformIndex(3), rng);
    default:
      return RandomMultilevelSpec(txns, 1 + rng->UniformIndex(2),
                                  rng->UniformDouble() * 0.5,
                                  rng->UniformDouble(), rng);
  }
}

std::vector<SimdTier> CompiledTiers() {
  std::vector<SimdTier> tiers;
  for (std::uint8_t t = 0; t <= static_cast<std::uint8_t>(MaxSimdTier());
       ++t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

/// Restores the default dispatch tier when a per-tier sweep exits.
struct TierGuard {
  ~TierGuard() { SetSimdTier(MaxSimdTier()); }
};

void ExpectSameWitness(const AdmitResult& ref, const AdmitResult& soa,
                       int round, std::size_t pos) {
  ASSERT_EQ(ref.outcome, soa.outcome)
      << "round " << round << " pos " << pos << " tier "
      << SimdTierName(ActiveSimdTier());
  ASSERT_EQ(ref.txn, soa.txn) << "round " << round << " pos " << pos;
  ASSERT_EQ(ref.witness_arc.valid, soa.witness_arc.valid)
      << "round " << round << " pos " << pos;
  if (ref.witness_arc.valid) {
    EXPECT_EQ(ref.witness_arc.from, soa.witness_arc.from)
        << "round " << round << " pos " << pos << ": witness source differs";
    EXPECT_EQ(ref.witness_arc.to, soa.witness_arc.to)
        << "round " << round << " pos " << pos << ": witness target differs";
    EXPECT_EQ(ref.witness_arc.arc_kinds, soa.witness_arc.arc_kinds)
        << "round " << round << " pos " << pos << ": witness kinds differ";
  }
}

void ExpectSameState(const OnlineRsrChecker& ref, const SoaRsrChecker& soa,
                     const TransactionSet& txns, int round) {
  ASSERT_EQ(ref.executed_count(), soa.executed_count()) << "round " << round;
  ASSERT_EQ(ref.rejections(), soa.rejections()) << "round " << round;
  ASSERT_EQ(ref.arcs_submitted(), soa.arcs_submitted()) << "round " << round;
  ASSERT_EQ(ref.arcs_inserted_total(), soa.arcs_inserted_total())
      << "round " << round;
  ASSERT_EQ(ref.feed_log(), soa.feed_log()) << "round " << round;
  ASSERT_EQ(ref.topology().edge_count(), soa.topology().edge_count())
      << "round " << round;
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    ASSERT_EQ(ref.TxnIsolated(t), soa.TxnIsolated(t))
        << "round " << round << " txn " << t;
    ASSERT_EQ(ref.TxnHasExecuted(t), soa.TxnHasExecuted(t))
        << "round " << round << " txn " << t;
  }
  for (ObjectId obj = 0; obj < txns.object_count(); ++obj) {
    ASSERT_EQ(ref.FrontierWriterGid(obj), soa.FrontierWriterGid(obj))
        << "round " << round << " object " << obj;
    std::vector<std::size_t> ref_readers;
    std::vector<std::size_t> soa_readers;
    ref.FrontierReaders(obj, &ref_readers);
    soa.FrontierReaders(obj, &soa_readers);
    ASSERT_EQ(ref_readers, soa_readers)
        << "round " << round << " object " << obj;
  }
}

// Per-op decision + witness + counter identity on random workloads, for
// every compiled tier. Every round draws a fresh workload/spec/schedule
// (same seed sequence per tier, so all tiers see identical inputs).
TEST(SoaDifferential, DecisionAndWitnessIdenticalAtEveryOpPerTier) {
  constexpr int kRounds = 500;
  const TierGuard guard;
  for (const SimdTier tier : CompiledTiers()) {
    ASSERT_EQ(SetSimdTier(tier), tier);
    const Rng base(0x50A0);
    int rejected_cases = 0;
    for (int round = 0; round < kRounds; ++round) {
      Rng rng = base.Split(static_cast<std::uint64_t>(round));
      WorkloadParams wp;
      wp.txn_count = 2 + rng.UniformIndex(4);
      wp.min_ops_per_txn = 1;
      wp.max_ops_per_txn = 5;
      wp.object_count = 2 + rng.UniformIndex(3);
      wp.read_ratio = 0.3 + 0.4 * rng.UniformDouble();
      const TransactionSet txns = GenerateTransactions(wp, &rng);
      const AtomicitySpec spec = DrawSpec(txns, &rng);
      const Schedule schedule = RandomSchedule(txns, &rng);

      OnlineRsrChecker ref(txns, spec);
      SoaRsrChecker soa(txns, spec);
      for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
        const AdmitResult r = ref.TryAppend(schedule.op(pos));
        const AdmitResult s = soa.TryAppend(schedule.op(pos));
        ExpectSameWitness(r, s, round, pos);
        if (!r.ok()) {
          ++rejected_cases;
          break;
        }
      }
      ExpectSameState(ref, soa, txns, round);
    }
    // The sweep must exercise both outcomes heavily to mean anything.
    EXPECT_GE(rejected_cases, 50) << "tier " << SimdTierName(tier);
  }
}

// The isolated fast path must agree on eligibility (retry vs accept) and
// leave both checkers in identical state; ineligible ops fall back to
// the slow path on both sides, exactly as ConcurrentAdmitter does.
TEST(SoaDifferential, IsolatedFastPathAgreesPerTier) {
  constexpr int kRounds = 500;
  const TierGuard guard;
  for (const SimdTier tier : CompiledTiers()) {
    ASSERT_EQ(SetSimdTier(tier), tier);
    const Rng base(0x150F);
    int fast_accepts = 0;
    for (int round = 0; round < kRounds; ++round) {
      Rng rng = base.Split(static_cast<std::uint64_t>(round));
      WorkloadParams wp;
      wp.txn_count = 2 + rng.UniformIndex(4);
      wp.min_ops_per_txn = 1;
      wp.max_ops_per_txn = 5;
      wp.object_count = 2 + rng.UniformIndex(4);
      wp.read_ratio = 0.3 + 0.4 * rng.UniformDouble();
      const TransactionSet txns = GenerateTransactions(wp, &rng);
      const AtomicitySpec spec = DrawSpec(txns, &rng);
      const Schedule schedule = RandomSchedule(txns, &rng);

      OnlineRsrChecker ref(txns, spec);
      SoaRsrChecker soa(txns, spec);
      for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
        const Operation& op = schedule.op(pos);
        AdmitResult r = AdmitResult::Retry(op.txn);
        AdmitResult s = AdmitResult::Retry(op.txn);
        if (rng.UniformDouble() < 0.5) {
          r = ref.TryAppendIsolated(op);
          s = soa.TryAppendIsolated(op);
          ASSERT_EQ(r.outcome, s.outcome)
              << "round " << round << " pos " << pos << " (isolated)";
          if (r.ok()) ++fast_accepts;
        }
        if (r == AdmitOutcome::kRetry) {
          r = ref.TryAppend(op);
          s = soa.TryAppend(op);
          ExpectSameWitness(r, s, round, pos);
        }
        if (!r.ok()) break;
      }
      ExpectSameState(ref, soa, txns, round);
    }
    EXPECT_GE(fast_accepts, 100) << "tier " << SimdTierName(tier);
  }
}

// Exact aborts: both checkers reset + replay; decisions and state must
// stay identical through arbitrary mixes of feeds, rejections and
// RemoveTransactionExact calls.
TEST(SoaDifferential, ExactAbortKeepsCheckersIdenticalPerTier) {
  constexpr int kRounds = 120;
  const TierGuard guard;
  for (const SimdTier tier : CompiledTiers()) {
    ASSERT_EQ(SetSimdTier(tier), tier);
    const Rng base(0xABF7);
    for (int round = 0; round < kRounds; ++round) {
      Rng rng = base.Split(static_cast<std::uint64_t>(round));
      WorkloadParams wp;
      wp.txn_count = 2 + rng.UniformIndex(3);
      wp.min_ops_per_txn = 1;
      wp.max_ops_per_txn = 4;
      wp.object_count = 2 + rng.UniformIndex(2);
      const TransactionSet txns = GenerateTransactions(wp, &rng);
      const AtomicitySpec spec = DrawSpec(txns, &rng);

      OnlineRsrChecker ref(txns, spec);
      SoaRsrChecker soa(txns, spec);
      std::vector<std::uint32_t> next(txns.txn_count(), 0);
      for (int step = 0; step < 60; ++step) {
        const TxnId t =
            static_cast<TxnId>(rng.UniformIndex(txns.txn_count()));
        if (next[t] < txns.txn(t).size() && rng.UniformDouble() < 0.85) {
          const Operation& op = txns.txn(t).op(next[t]);
          const AdmitResult r = ref.TryAppend(op);
          const AdmitResult s = soa.TryAppend(op);
          ExpectSameWitness(r, s, round, static_cast<std::size_t>(step));
          if (r.ok()) {
            ++next[t];
          } else {
            ref.RemoveTransactionExact(t);
            soa.RemoveTransactionExact(t);
            next[t] = 0;
          }
        } else if (next[t] > 0 && rng.UniformDouble() < 0.3) {
          ref.RemoveTransactionExact(t);
          soa.RemoveTransactionExact(t);
          next[t] = 0;
        }
        ExpectSameState(ref, soa, txns, round);
      }
    }
  }
}

// ------------------------------------------------------------ DenseBitset

// Naive per-bit references for the kernel-backed bulk operations.
DenseBitset NaiveUnion(const DenseBitset& a, const DenseBitset& b) {
  DenseBitset out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) || b.Test(i)) out.Set(i);
  }
  return out;
}

DenseBitset NaiveIntersection(const DenseBitset& a, const DenseBitset& b) {
  DenseBitset out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) && b.Test(i)) out.Set(i);
  }
  return out;
}

bool NaiveIntersects(const DenseBitset& a, const DenseBitset& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) && b.Test(i)) return true;
  }
  return false;
}

TEST(DenseBitsetWordBoundary, BulkOpsMatchNaiveAtBoundarySizesPerTier) {
  const std::size_t kSizes[] = {0, 1, 63, 64, 65, 127, 128, 129, 200};
  const TierGuard guard;
  for (const SimdTier tier : CompiledTiers()) {
    ASSERT_EQ(SetSimdTier(tier), tier);
    Rng rng(0xB1B5);
    for (const std::size_t size : kSizes) {
      for (int trial = 0; trial < 20; ++trial) {
        DenseBitset a(size);
        DenseBitset b(size);
        for (std::size_t i = 0; i < size; ++i) {
          if (rng.UniformDouble() < 0.4) a.Set(i);
          if (rng.UniformDouble() < 0.4) b.Set(i);
        }
        DenseBitset u = a;
        u.UnionWith(b);
        EXPECT_EQ(u, NaiveUnion(a, b))
            << "size " << size << " tier " << SimdTierName(tier);
        DenseBitset x = a;
        x.IntersectWith(b);
        EXPECT_EQ(x, NaiveIntersection(a, b))
            << "size " << size << " tier " << SimdTierName(tier);
        EXPECT_EQ(a.Intersects(b), NaiveIntersects(a, b))
            << "size " << size << " tier " << SimdTierName(tier);
        EXPECT_EQ(u.Count(), NaiveUnion(a, b).Count());
      }
    }
  }
}

TEST(DenseBitsetWordBoundary, SetTestFindAtWordEdges) {
  for (const std::size_t size : {1ul, 63ul, 64ul, 65ul, 128ul, 129ul}) {
    DenseBitset bits(size);
    EXPECT_TRUE(bits.None());
    EXPECT_EQ(bits.FindNext(0), size);
    bits.Set(0);
    bits.Set(size - 1);
    EXPECT_TRUE(bits.Test(0));
    EXPECT_TRUE(bits.Test(size - 1));
    EXPECT_EQ(bits.Count(), size == 1 ? 1u : 2u);
    EXPECT_EQ(bits.FindNext(0), 0u);
    if (size > 1) {
      EXPECT_EQ(bits.FindNext(1), size - 1);
      EXPECT_EQ(bits.ToVector(),
                (std::vector<std::size_t>{0, size - 1}));
    }
    bits.Reset(size - 1);
    EXPECT_FALSE(bits.Test(size - 1));
  }
}

TEST(DenseBitsetWordBoundary, ResizePreservesBitsAndZeroesTail) {
  DenseBitset bits(65);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Resize(130);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 3u);
  EXPECT_EQ(bits.FindNext(65), 130u);  // grown tail is zero
  bits.Set(129);
  bits.Resize(64);  // shrink drops bits 64..129
  EXPECT_EQ(bits.Count(), 2u);
  bits.Resize(130);  // regrow re-exposes zeros, not stale bits
  EXPECT_FALSE(bits.Test(64));
  EXPECT_FALSE(bits.Test(129));
  EXPECT_EQ(bits.Count(), 2u);
  // Degenerate sizes.
  DenseBitset empty(0);
  EXPECT_TRUE(empty.None());
  EXPECT_EQ(empty.Count(), 0u);
  empty.Resize(1);
  EXPECT_FALSE(empty.Test(0));
}

}  // namespace
}  // namespace relser
