// Tests for relative atomicity specifications: breakpoint mechanics,
// unit derivation, PushForward/PullBackward (the Section 3 primitives),
// and every published builder family.
#include <gtest/gtest.h>

#include "model/text.h"
#include "spec/atomicity_spec.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TransactionSet FourOpTxnPair() {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x] w1[z] r1[y]\nT2 = r2[y] w2[y] r2[x]\n");
  RELSER_CHECK(txns.ok());
  return *std::move(txns);
}

TEST(AtomicitySpec, DefaultIsAbsolute) {
  const TransactionSet txns = FourOpTxnPair();
  const AtomicitySpec spec(txns);
  EXPECT_TRUE(spec.IsAbsolute());
  EXPECT_EQ(spec.TotalBreakpoints(), 0u);
  EXPECT_EQ(spec.UnitCount(0, 1), 1u);
  EXPECT_EQ(spec.UnitBounds(0, 1, 0), (UnitRange{0, 3}));
}

TEST(AtomicitySpec, SetAndClearBreakpoints) {
  const TransactionSet txns = FourOpTxnPair();
  AtomicitySpec spec(txns);
  spec.SetBreakpoint(0, 1, 1);
  EXPECT_TRUE(spec.HasBreakpoint(0, 1, 1));
  EXPECT_FALSE(spec.HasBreakpoint(0, 1, 0));
  EXPECT_FALSE(spec.HasBreakpoint(1, 0, 1));  // pairs are directional
  EXPECT_EQ(spec.UnitCount(0, 1), 2u);
  spec.ClearBreakpoint(0, 1, 1);
  EXPECT_TRUE(spec.IsAbsolute());
}

TEST(AtomicitySpec, UnitsDeriveFromBreakpoints) {
  const TransactionSet txns = FourOpTxnPair();
  AtomicitySpec spec(txns);
  spec.SetBreakpoint(0, 1, 0);
  spec.SetBreakpoint(0, 1, 2);
  const auto units = spec.Units(0, 1);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0], (UnitRange{0, 0}));
  EXPECT_EQ(units[1], (UnitRange{1, 2}));
  EXPECT_EQ(units[2], (UnitRange{3, 3}));
  EXPECT_EQ(spec.UnitOfOp(0, 1, 0), 0u);
  EXPECT_EQ(spec.UnitOfOp(0, 1, 1), 1u);
  EXPECT_EQ(spec.UnitOfOp(0, 1, 2), 1u);
  EXPECT_EQ(spec.UnitOfOp(0, 1, 3), 2u);
  EXPECT_TRUE(units[1].Contains(2));
  EXPECT_FALSE(units[1].Contains(3));
}

TEST(AtomicitySpec, PushForwardPullBackwardMatchUnitEnds) {
  const TransactionSet txns = FourOpTxnPair();
  AtomicitySpec spec(txns);
  spec.SetBreakpoint(0, 1, 1);  // units: [0,1] [2,3]
  EXPECT_EQ(spec.PushForward(0, 1, 0), 1u);
  EXPECT_EQ(spec.PushForward(0, 1, 1), 1u);
  EXPECT_EQ(spec.PushForward(0, 1, 2), 3u);
  EXPECT_EQ(spec.PullBackward(0, 1, 3), 2u);
  EXPECT_EQ(spec.PullBackward(0, 1, 1), 0u);
  EXPECT_EQ(spec.PullBackward(0, 1, 0), 0u);
}

TEST(AtomicitySpec, PushPullConsistentWithUnitOfOpOnRandomSpecs) {
  Rng rng(5150);
  WorkloadParams wp;
  wp.txn_count = 4;
  wp.min_ops_per_txn = 1;
  wp.max_ops_per_txn = 7;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  for (int round = 0; round < 20; ++round) {
    const AtomicitySpec spec = RandomSpec(txns, 0.4, &rng);
    for (TxnId i = 0; i < txns.txn_count(); ++i) {
      for (TxnId j = 0; j < txns.txn_count(); ++j) {
        if (i == j) continue;
        for (std::uint32_t k = 0; k < txns.txn(i).size(); ++k) {
          const std::size_t unit = spec.UnitOfOp(i, j, k);
          const UnitRange bounds = spec.UnitBounds(i, j, unit);
          EXPECT_EQ(spec.PushForward(i, j, k), bounds.last);
          EXPECT_EQ(spec.PullBackward(i, j, k), bounds.first);
          EXPECT_TRUE(bounds.Contains(k));
        }
      }
    }
  }
}

TEST(AtomicitySpec, RelaxFullyMakesSingletonUnits) {
  const TransactionSet txns = FourOpTxnPair();
  AtomicitySpec spec(txns);
  spec.RelaxFully(0, 1);
  EXPECT_EQ(spec.UnitCount(0, 1), 4u);
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(spec.PushForward(0, 1, k), k);
    EXPECT_EQ(spec.PullBackward(0, 1, k), k);
  }
  // The other direction is untouched.
  EXPECT_EQ(spec.UnitCount(1, 0), 1u);
}

TEST(AtomicitySpec, SingleOperationTransactionHasNoGaps) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\n");
  AtomicitySpec spec(*txns);
  EXPECT_EQ(spec.UnitCount(0, 1), 1u);
  EXPECT_EQ(spec.PushForward(0, 1, 0), 0u);
  spec.RelaxFully(0, 1);  // no-op, no gaps exist
  EXPECT_EQ(spec.UnitCount(0, 1), 1u);
}

TEST(AtomicitySpec, PermissivenessPartialOrder) {
  const TransactionSet txns = FourOpTxnPair();
  const AtomicitySpec absolute = AbsoluteSpec(txns);
  const AtomicitySpec relaxed = FullyRelaxedSpec(txns);
  AtomicitySpec middle(txns);
  middle.SetBreakpoint(0, 1, 1);
  EXPECT_TRUE(relaxed.AtLeastAsPermissiveAs(absolute));
  EXPECT_TRUE(relaxed.AtLeastAsPermissiveAs(middle));
  EXPECT_TRUE(middle.AtLeastAsPermissiveAs(absolute));
  EXPECT_FALSE(absolute.AtLeastAsPermissiveAs(middle));
  EXPECT_FALSE(middle.AtLeastAsPermissiveAs(relaxed));
  EXPECT_TRUE(middle.AtLeastAsPermissiveAs(middle));
}

TEST(AtomicitySpec, ValidateAgainstDetectsShapeDrift) {
  const TransactionSet txns = FourOpTxnPair();
  const AtomicitySpec spec(txns);
  EXPECT_TRUE(spec.ValidateAgainst(txns).ok());
  auto other = ParseTransactionSet("T1 = r1[x]\nT2 = r2[y]\n");
  EXPECT_FALSE(spec.ValidateAgainst(*other).ok());
  auto three = ParseTransactionSet("T1 = r1[x]\nT2 = r2[y]\nT3 = r3[x]\n");
  EXPECT_FALSE(spec.ValidateAgainst(*three).ok());
}

TEST(Builders, SetUnitsByLength) {
  const TransactionSet txns = FourOpTxnPair();
  AtomicitySpec spec(txns);
  SetUnitsByLength(&spec, 0, 1, {2, 1, 1});
  EXPECT_EQ(spec.UnitCount(0, 1), 3u);
  EXPECT_EQ(spec.UnitBounds(0, 1, 0), (UnitRange{0, 1}));
  EXPECT_EQ(spec.UnitBounds(0, 1, 1), (UnitRange{2, 2}));
  // Re-partitioning replaces the previous boundaries.
  SetUnitsByLength(&spec, 0, 1, {4});
  EXPECT_EQ(spec.UnitCount(0, 1), 1u);
}

TEST(Builders, FluentChainMatchesHandBuiltSpec) {
  const TransactionSet txns = FourOpTxnPair();
  // Hand-built reference.
  AtomicitySpec expected(txns);
  expected.RelaxFully(0, 1);
  expected.SetBreakpoint(1, 0, 1);
  // Same spec as one fluent declaration.
  const AtomicitySpec spec = SpecBuilder(txns)
                                 .RelaxPair(0, 1)
                                 .Breakpoint(1, 0, 1)
                                 .Build();
  for (std::uint32_t g = 0; g + 1 < 4; ++g) {  // T1 has 3 gaps
    EXPECT_EQ(spec.HasBreakpoint(0, 1, g), expected.HasBreakpoint(0, 1, g));
  }
  for (std::uint32_t g = 0; g + 1 < 3; ++g) {  // T2 has 2 gaps
    EXPECT_EQ(spec.HasBreakpoint(1, 0, g), expected.HasBreakpoint(1, 0, g));
  }
  EXPECT_EQ(spec.UnitCount(0, 1), 4u);
  EXPECT_EQ(spec.UnitCount(1, 0), 2u);
}

TEST(Builders, FluentRelaxAllAndClearEqualNamedFamilies) {
  const TransactionSet txns = FourOpTxnPair();
  const AtomicitySpec relaxed = SpecBuilder(txns).RelaxAll().Build();
  const AtomicitySpec reference = FullyRelaxedSpec(txns);
  EXPECT_TRUE(relaxed.AtLeastAsPermissiveAs(reference));
  EXPECT_TRUE(reference.AtLeastAsPermissiveAs(relaxed));
  // ClearBreakpoint walks a relaxation back.
  const AtomicitySpec narrowed =
      SpecBuilder(txns).RelaxPair(0, 1).ClearBreakpoint(0, 1, 2).Build();
  EXPECT_TRUE(narrowed.HasBreakpoint(0, 1, 0));
  EXPECT_FALSE(narrowed.HasBreakpoint(0, 1, 2));
}

TEST(Builders, FluentUnitsMeetJoinAndFromSpec) {
  const TransactionSet txns = FourOpTxnPair();
  const AtomicitySpec units =
      SpecBuilder(txns).UnitsByLength(0, 1, {2, 2}).Build();
  EXPECT_EQ(units.UnitCount(0, 1), 2u);
  EXPECT_EQ(units.UnitBounds(0, 1, 0), (UnitRange{0, 1}));

  // Meet with the absolute spec erases every relaxation; join with the
  // fully relaxed spec grants all of them.
  const AtomicitySpec met =
      SpecBuilder(txns).RelaxAll().Meet(AbsoluteSpec(txns)).Build();
  EXPECT_EQ(met.UnitCount(0, 1), 1u);
  const AtomicitySpec joined = SpecBuilder(txns)
                                   .Join(FullyRelaxedSpec(txns))
                                   .Build();
  EXPECT_EQ(joined.UnitCount(0, 1), 4u);

  // FromSpec continues a chain from a family constructor's output.
  const AtomicitySpec extended = SpecBuilder::FromSpec(AbsoluteSpec(txns))
                                     .Breakpoint(0, 1, 1)
                                     .Build();
  EXPECT_TRUE(extended.HasBreakpoint(0, 1, 1));
  EXPECT_FALSE(extended.HasBreakpoint(0, 1, 0));
}

TEST(Builders, CompatibilitySets) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x]\nT2 = r2[x] w2[x]\nT3 = r3[x] w3[x]\n");
  // T1 and T2 share a set; T3 is alone.
  const AtomicitySpec spec = CompatibilitySetSpec(*txns, {0, 0, 1});
  EXPECT_EQ(spec.UnitCount(0, 1), 2u);  // fully relaxed within the set
  EXPECT_EQ(spec.UnitCount(1, 0), 2u);
  EXPECT_EQ(spec.UnitCount(0, 2), 1u);  // atomic across sets
  EXPECT_EQ(spec.UnitCount(2, 0), 1u);
  EXPECT_EQ(spec.UnitCount(2, 1), 1u);
}

TEST(Builders, MultilevelVisibilityByProximity) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x] r1[y]\nT2 = r2[x]\nT3 = r3[x]\n");
  // T1 and T2 share group path {0,0}; T3 is {1,0}.
  // T1's gap 0 has level 1 (same top group); gap 1 has level 0 (all).
  const AtomicitySpec spec = MultilevelSpec(
      *txns, {{0, 0}, {0, 0}, {1, 0}}, {{1, 0}, {}, {}});
  EXPECT_TRUE(spec.HasBreakpoint(0, 1, 0));   // T2 is close: sees level 1
  EXPECT_TRUE(spec.HasBreakpoint(0, 1, 1));   // level 0 visible to all
  EXPECT_FALSE(spec.HasBreakpoint(0, 2, 0));  // T3 too far for level 1
  EXPECT_TRUE(spec.HasBreakpoint(0, 2, 1));
}

TEST(Builders, MultilevelBreakpointSetsAreNested) {
  // Lynch's hierarchies guarantee that for any two observers, one's
  // breakpoint set contains the other's; verify on random instances.
  Rng rng(99);
  WorkloadParams wp;
  wp.txn_count = 6;
  wp.min_ops_per_txn = 3;
  wp.max_ops_per_txn = 6;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  for (int round = 0; round < 10; ++round) {
    const AtomicitySpec spec = RandomMultilevelSpec(txns, 3, 0.3, 0.5, &rng);
    for (TxnId i = 0; i < txns.txn_count(); ++i) {
      const std::size_t gaps = txns.txn(i).size() - 1;
      for (TxnId a = 0; a < txns.txn_count(); ++a) {
        for (TxnId b = 0; b < txns.txn_count(); ++b) {
          if (a == i || b == i || a == b) continue;
          bool a_superset = true;
          bool b_superset = true;
          for (std::uint32_t g = 0; g < gaps; ++g) {
            const bool in_a = spec.HasBreakpoint(i, a, g);
            const bool in_b = spec.HasBreakpoint(i, b, g);
            a_superset = a_superset && (in_b ? in_a : true);
            b_superset = b_superset && (in_a ? in_b : true);
          }
          EXPECT_TRUE(a_superset || b_superset)
              << "breakpoint sets of T" << i + 1 << " for T" << a + 1
              << " and T" << b + 1 << " are incomparable";
        }
      }
    }
  }
}

TEST(Builders, BreakpointSpecSetsExactGaps) {
  const TransactionSet txns = FourOpTxnPair();
  std::vector<std::vector<std::vector<std::uint32_t>>> breakpoints(2);
  breakpoints[0] = {{}, {0, 2}};
  breakpoints[1] = {{1}, {}};
  const AtomicitySpec spec = BreakpointSpec(txns, breakpoints);
  EXPECT_TRUE(spec.HasBreakpoint(0, 1, 0));
  EXPECT_FALSE(spec.HasBreakpoint(0, 1, 1));
  EXPECT_TRUE(spec.HasBreakpoint(0, 1, 2));
  EXPECT_TRUE(spec.HasBreakpoint(1, 0, 1));
  EXPECT_FALSE(spec.HasBreakpoint(1, 0, 0));
}

TEST(SpecGen, DensityExtremes) {
  Rng rng(1);
  WorkloadParams wp;
  wp.txn_count = 3;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  EXPECT_TRUE(RandomSpec(txns, 0.0, &rng).IsAbsolute());
  EXPECT_EQ(RandomSpec(txns, 1.0, &rng), FullyRelaxedSpec(txns));
  EXPECT_EQ(RandomUniformObserverSpec(txns, 1.0, &rng),
            FullyRelaxedSpec(txns));
}

TEST(SpecGen, UniformObserverGivesIdenticalViews) {
  Rng rng(2);
  WorkloadParams wp;
  wp.txn_count = 4;
  wp.min_ops_per_txn = 4;
  wp.max_ops_per_txn = 6;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomUniformObserverSpec(txns, 0.5, &rng);
  for (TxnId i = 0; i < txns.txn_count(); ++i) {
    for (std::uint32_t g = 0; g + 1 < txns.txn(i).size(); ++g) {
      bool any = false;
      bool all = true;
      for (TxnId j = 0; j < txns.txn_count(); ++j) {
        if (i == j) continue;
        const bool has = spec.HasBreakpoint(i, j, g);
        any = any || has;
        all = all && has;
      }
      EXPECT_EQ(any, all) << "observer views differ at T" << i + 1
                          << " gap " << g;
    }
  }
}

TEST(SpecGen, DeterministicGivenSeed) {
  Rng rng1(7);
  Rng rng2(7);
  WorkloadParams wp;
  wp.txn_count = 3;
  const TransactionSet txns1 = GenerateTransactions(wp, &rng1);
  const TransactionSet txns2 = GenerateTransactions(wp, &rng2);
  EXPECT_EQ(RandomSpec(txns1, 0.5, &rng1), RandomSpec(txns2, 0.5, &rng2));
}


TEST(SpecAlgebra, MeetIsIntersectionJoinIsUnion) {
  const TransactionSet txns = FourOpTxnPair();
  AtomicitySpec a(txns);
  a.SetBreakpoint(0, 1, 0);
  a.SetBreakpoint(0, 1, 1);
  AtomicitySpec b(txns);
  b.SetBreakpoint(0, 1, 1);
  b.SetBreakpoint(0, 1, 2);
  const AtomicitySpec meet = MeetSpecs(a, b);
  EXPECT_FALSE(meet.HasBreakpoint(0, 1, 0));
  EXPECT_TRUE(meet.HasBreakpoint(0, 1, 1));
  EXPECT_FALSE(meet.HasBreakpoint(0, 1, 2));
  const AtomicitySpec join = JoinSpecs(a, b);
  EXPECT_TRUE(join.HasBreakpoint(0, 1, 0));
  EXPECT_TRUE(join.HasBreakpoint(0, 1, 1));
  EXPECT_TRUE(join.HasBreakpoint(0, 1, 2));
}

TEST(SpecAlgebra, LatticeLawsOnRandomSpecs) {
  Rng rng(404);
  WorkloadParams wp;
  wp.txn_count = 4;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  for (int round = 0; round < 20; ++round) {
    const AtomicitySpec a = RandomSpec(txns, 0.4, &rng);
    const AtomicitySpec b = RandomSpec(txns, 0.4, &rng);
    const AtomicitySpec meet = MeetSpecs(a, b);
    const AtomicitySpec join = JoinSpecs(a, b);
    // Bounds.
    EXPECT_TRUE(a.AtLeastAsPermissiveAs(meet));
    EXPECT_TRUE(b.AtLeastAsPermissiveAs(meet));
    EXPECT_TRUE(join.AtLeastAsPermissiveAs(a));
    EXPECT_TRUE(join.AtLeastAsPermissiveAs(b));
    // Commutativity and idempotence.
    EXPECT_EQ(meet, MeetSpecs(b, a));
    EXPECT_EQ(join, JoinSpecs(b, a));
    EXPECT_EQ(MeetSpecs(a, a), a);
    EXPECT_EQ(JoinSpecs(a, a), a);
    // Absorption.
    EXPECT_EQ(MeetSpecs(a, JoinSpecs(a, b)), a);
    EXPECT_EQ(JoinSpecs(a, MeetSpecs(a, b)), a);
    // Identities of the lattice ends.
    EXPECT_EQ(MeetSpecs(a, FullyRelaxedSpec(txns)), a);
    EXPECT_EQ(JoinSpecs(a, AbsoluteSpec(txns)), a);
  }
}

}  // namespace
}  // namespace relser
