// Integration tests of the online schedulers: every protocol must finish
// every workload and its committed schedule must satisfy the protocol's
// advertised guarantee (conflict serializability for serial/2PL/SGT,
// relative serializability for RSGT/unit-2PL).
#include <gtest/gtest.h>

#include <memory>

#include "core/paper_examples.h"
#include "model/text.h"
#include "sched/engine.h"
#include "sched/factory.h"
#include "sched/graph_based.h"
#include "sched/lock_based.h"
#include "sched/serial.h"
#include "sched/verify.h"
#include "spec/builders.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

class SchedulerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerSweep, CompletesAndGuaranteeHoldsOnRandomWorkloads) {
  const std::string name = GetParam();
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 30; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(5);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    wp.object_count = 2 + rng.UniformIndex(6);
    wp.read_ratio = 0.5;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const double density = rng.UniformDouble();
    const AtomicitySpec spec = RandomSpec(txns, density, &rng);
    auto scheduler = MakeScheduler(name, txns, spec);
    ASSERT_NE(scheduler, nullptr);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 200000;
    const SimResult result = RunSimulation(txns, scheduler.get(), sp);
    SCOPED_TRACE("round " + std::to_string(round) + " scheduler " + name);
    ASSERT_TRUE(result.metrics.completed)
        << "did not finish in " << sp.max_ticks << " ticks";
    const RunVerification verification =
        VerifyRun(txns, spec, result, GuaranteeOf(name));
    EXPECT_TRUE(verification.guarantee_held)
        << "committed schedule violates the " << name << " guarantee";
  }
}

TEST_P(SchedulerSweep, CompletesUnderAbsoluteAtomicity) {
  // Under absolute specs RSGT must behave like a conflict-serializability
  // certifier (Lemma 1): both guarantees coincide.
  const std::string name = GetParam();
  Rng rng(0xFEED);
  for (int round = 0; round < 15; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.min_ops_per_txn = 2;
    wp.max_ops_per_txn = 5;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = AbsoluteSpec(txns);
    auto scheduler = MakeScheduler(name, txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 100000;
    const SimResult result = RunSimulation(txns, scheduler.get(), sp);
    ASSERT_TRUE(result.metrics.completed);
    const RunVerification verification =
        VerifyRun(txns, spec, result, Guarantee::kConflictSerializable);
    EXPECT_TRUE(verification.guarantee_held)
        << name << " produced a non-conflict-serializable schedule under "
        << "absolute atomicity";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::Values("serial", "2pl", "sgt", "rsgt",
                                           "unit2pl", "altruistic", "to",
                                           "ra"),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

TEST(SchedulerBasics, SerialSchedulerProducesSerialSchedule) {
  Rng rng(7);
  WorkloadParams wp;
  wp.txn_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  SerialScheduler scheduler;
  SimParams sp;
  const SimResult result = RunSimulation(txns, &scheduler, sp);
  ASSERT_TRUE(result.metrics.completed);
  auto schedule = result.CommittedSchedule(txns);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->IsSerial());
  EXPECT_EQ(result.metrics.aborts, 0u);
  EXPECT_EQ(result.metrics.cascade_aborts, 0u);
}

TEST(SchedulerBasics, Strict2PLNeverCascades) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.object_count = 3;  // high contention to force deadlocks
    wp.read_ratio = 0.2;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    Strict2PLScheduler scheduler;
    SimParams sp;
    sp.seed = rng.Next();
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed);
    EXPECT_EQ(result.metrics.cascade_aborts, 0u)
        << "strict 2PL must not produce cascading aborts";
  }
}

TEST(SchedulerBasics, RsgtAdmitsTheFigure1WorkloadWithoutAborts) {
  // Under Figure 1's specification, a favourable request order exists in
  // which RSGT admits non-serializable interleavings; at minimum the
  // workload must complete with the relative-serializability guarantee.
  const PaperExample fig = Figure1();
  RSGTScheduler scheduler(fig.txns, fig.spec);
  SimParams sp;
  sp.seed = 5;
  const SimResult result = RunSimulation(fig.txns, &scheduler, sp);
  ASSERT_TRUE(result.metrics.completed);
  const RunVerification verification = VerifyRun(
      fig.txns, fig.spec, result, Guarantee::kRelativelySerializable);
  EXPECT_TRUE(verification.guarantee_held);
}

TEST(SchedulerBasics, UnitLockReleasesEarlyOnlyWithBreakpoints) {
  Rng rng(3);
  WorkloadParams wp;
  wp.txn_count = 4;
  wp.min_ops_per_txn = 4;
  wp.max_ops_per_txn = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  {
    const AtomicitySpec absolute = AbsoluteSpec(txns);
    UnitLockScheduler scheduler(txns, absolute);
    SimParams sp;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed);
    EXPECT_EQ(scheduler.early_releases(), 0u)
        << "no breakpoints -> no early releases (degenerates to 2PL)";
  }
  {
    const AtomicitySpec relaxed = FullyRelaxedSpec(txns);
    UnitLockScheduler scheduler(txns, relaxed);
    SimParams sp;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed);
    EXPECT_GT(scheduler.early_releases(), 0u);
  }
}

TEST(SchedulerBasics, SgtRetiresCommittedSourcesAndCascades) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\nT3 = r3[x]\n");
  SGTScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(2).op(0)), AdmitOutcome::kAccept);
  // T2 commits first but has an in-edge from uncommitted T1: not retirable.
  scheduler.OnCommit(1);
  EXPECT_EQ(scheduler.retired_count(), 0u);
  // T1 commits with in-degree 0: retired, which exposes committed T2 as a
  // new source and cascades. Uncommitted T3 stays.
  scheduler.OnCommit(0);
  EXPECT_EQ(scheduler.retired_count(), 2u);
  scheduler.OnCommit(2);
  EXPECT_EQ(scheduler.retired_count(), 3u);
}

TEST(SchedulerBasics, SgtStillCatchesCyclesAmongLiveTxnsAfterGc) {
  auto txns = ParseTransactionSet(
      "T1 = w1[x]\nT2 = w2[x] w2[y]\nT3 = w3[y] w3[x]\n");
  SGTScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  scheduler.OnCommit(0);
  EXPECT_EQ(scheduler.retired_count(), 1u);
  // The retired writer's history entry on x is gone, so T2's write gets no
  // arc — and none is needed: T1 can no longer join any cycle.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(2).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(1)), AdmitOutcome::kAccept);
  // w3[x] closes T2 -> T3 -> T2: must still be rejected after GC.
  EXPECT_EQ(scheduler.OnRequest(txns->txn(2).op(1)), AdmitOutcome::kAborted);
  EXPECT_EQ(scheduler.cycle_rejections(), 1u);
}

TEST(SchedulerBasics, SgtAbortScrubsHistoryAndExposesSources) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\nT3 = w3[x]\n");
  SGTScheduler scheduler(*txns);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(0).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(1).op(0)), AdmitOutcome::kAccept);
  // Arcs only point into requesters, so committed T1 retires immediately.
  scheduler.OnCommit(0);
  EXPECT_EQ(scheduler.retired_count(), 1u);
  // Abort T2: its read of x must vanish from the history, so T3's write
  // gains no arc from it.
  scheduler.OnAbort(1);
  EXPECT_EQ(scheduler.OnRequest(txns->txn(2).op(0)), AdmitOutcome::kAccept);
  EXPECT_EQ(scheduler.cycle_rejections(), 0u);
}

TEST(SchedulerBasics, SgtGcKeepsRunsCorrectOnRandomWorkloads) {
  Rng rng(0x56717);
  std::size_t total_retired = 0;
  for (int round = 0; round < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3 + rng.UniformIndex(4);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.object_count = 2 + rng.UniformIndex(4);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = AbsoluteSpec(txns);
    SGTScheduler scheduler(txns);
    SimParams sp;
    sp.seed = rng.Next();
    sp.max_ticks = 200000;
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed) << "round " << round;
    const RunVerification verification =
        VerifyRun(txns, spec, result, GuaranteeOf("sgt"));
    EXPECT_TRUE(verification.guarantee_held) << "round " << round;
    // Every transaction eventually commits, so every node must retire.
    EXPECT_EQ(scheduler.retired_count(), txns.txn_count())
        << "round " << round;
    total_retired += scheduler.retired_count();
  }
  EXPECT_GT(total_retired, 0u);
}

}  // namespace
}  // namespace relser
