// Round-trip and cross-component integration tests over the paper's
// examples and random instances: printers/parsers, spec serialization,
// and the stability of analyses under re-parsing.
#include <gtest/gtest.h>

#include "core/classify.h"
#include "util/strings.h"
#include "core/paper_examples.h"
#include "model/text.h"
#include "spec/text.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(RoundTrip, PaperTransactionsSurviveReparse) {
  for (const PaperExample& fig : AllPaperExamples()) {
    std::string text;
    for (TxnId t = 0; t < fig.txns.txn_count(); ++t) {
      text += StrCat("T", t + 1, " = ", ToString(fig.txns, fig.txns.txn(t)),
                     "\n");
    }
    auto reparsed = ParseTransactionSet(text);
    ASSERT_TRUE(reparsed.ok()) << fig.name << ": " << reparsed.status();
    ASSERT_EQ(reparsed->txn_count(), fig.txns.txn_count());
    for (TxnId t = 0; t < fig.txns.txn_count(); ++t) {
      EXPECT_EQ(ToString(*reparsed, reparsed->txn(t)),
                ToString(fig.txns, fig.txns.txn(t)));
    }
  }
}

TEST(RoundTrip, PaperSpecsSurviveReparse) {
  for (const PaperExample& fig : AllPaperExamples()) {
    const std::string text = ToString(fig.txns, fig.spec);
    auto reparsed = ParseAtomicitySpec(fig.txns, text);
    ASSERT_TRUE(reparsed.ok()) << fig.name << ": " << reparsed.status();
    EXPECT_EQ(*reparsed, fig.spec) << fig.name;
  }
}

TEST(RoundTrip, PaperSchedulesSurviveReparse) {
  for (const PaperExample& fig : AllPaperExamples()) {
    for (const auto& [name, schedule] : fig.schedules) {
      const std::string text = ToString(fig.txns, schedule);
      auto reparsed = ParseSchedule(fig.txns, text);
      ASSERT_TRUE(reparsed.ok()) << fig.name << "/" << name;
      EXPECT_EQ(reparsed->ops(), schedule.ops());
    }
  }
}

TEST(RoundTrip, RandomSpecsSurviveReparse) {
  Rng rng(0x707);
  for (int round = 0; round < 25; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(4);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    auto reparsed = ParseAtomicitySpec(txns, ToString(txns, spec));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(*reparsed, spec);
  }
}

TEST(RoundTrip, ClassificationInvariantUnderReparse) {
  // Printing and re-parsing an instance must not change any analysis
  // outcome — guards against lossy serialization.
  Rng rng(0x708);
  for (int round = 0; round < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);

    std::string txn_text;
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      txn_text += ToString(txns, txns.txn(t)) + "\n";
    }
    auto txns2 = ParseTransactionSet(txn_text);
    ASSERT_TRUE(txns2.ok());
    auto spec2 = ParseAtomicitySpec(*txns2, ToString(txns, spec));
    ASSERT_TRUE(spec2.ok());
    auto schedule2 = ParseSchedule(*txns2, ToString(txns, schedule));
    ASSERT_TRUE(schedule2.ok());

    const ScheduleClassification a = Classify(txns, schedule, spec);
    const ScheduleClassification b = Classify(*txns2, *schedule2, *spec2);
    EXPECT_EQ(a.serial, b.serial);
    EXPECT_EQ(a.relatively_atomic, b.relatively_atomic);
    EXPECT_EQ(a.relatively_serial, b.relatively_serial);
    EXPECT_EQ(a.relatively_serializable, b.relatively_serializable);
    EXPECT_EQ(a.conflict_serializable, b.conflict_serializable);
  }
}

TEST(RoundTrip, Figure1SpecPrintsThePaperLines) {
  const PaperExample fig = Figure1();
  const std::string line = AtomicityLineToString(fig.txns, fig.spec, 0, 1);
  EXPECT_EQ(line, "Atomicity(T1,T2): r1[x]w1[x] | w1[z]r1[y]");
  const std::string line13 = AtomicityLineToString(fig.txns, fig.spec, 0, 2);
  EXPECT_EQ(line13, "Atomicity(T1,T3): r1[x]w1[x] | w1[z] | r1[y]");
}

}  // namespace
}  // namespace relser
