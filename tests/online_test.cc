// Tests for the streaming certifier (OnlineRsrChecker): agreement with
// the offline Theorem 1 test, rejection positions, transaction removal,
// and the DOT export of the maintained graph.
#include <gtest/gtest.h>

#include "core/online.h"
#include "core/paper_examples.h"
#include "core/rsr.h"
#include "graph/dot.h"
#include "model/text.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(OnlineChecker, AcceptsRelativelySerializableSchedulesEntirely) {
  const PaperExample fig = Figure1();
  for (const char* name : {"Sra", "Srs", "S2"}) {
    const Schedule& schedule = fig.schedule(name);
    EXPECT_EQ(OnlineRsrChecker::FirstRejection(fig.txns, fig.spec, schedule),
              schedule.size())
        << name;
  }
}

TEST(OnlineChecker, AgreesWithOfflineTestOnRandomInstances) {
  Rng rng(0xFACE);
  for (int round = 0; round < 150; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(3);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 4;
    wp.object_count = 2 + rng.UniformIndex(3);
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const bool offline = IsRelativelySerializable(txns, schedule, spec);
    const std::size_t rejection =
        OnlineRsrChecker::FirstRejection(txns, spec, schedule);
    EXPECT_EQ(offline, rejection == schedule.size())
        << "round " << round << ": offline says " << offline
        << ", online rejects at " << rejection << "/" << schedule.size();
  }
}

TEST(OnlineChecker, RejectionLeavesStateUnchanged) {
  // Build a prefix, find a rejected op, verify the checker still accepts
  // a different continuation.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  const AtomicitySpec spec = AbsoluteSpec(*txns);
  OnlineRsrChecker checker(*txns, spec);
  EXPECT_TRUE(checker.TryAppend(txns->txn(0).op(0)));  // w1[x]
  EXPECT_TRUE(checker.TryAppend(txns->txn(1).op(0)));  // r2[x]
  EXPECT_TRUE(checker.TryAppend(txns->txn(1).op(1)));  // w2[y]
  // r1[y] now closes the sandwich cycle: rejected.
  EXPECT_FALSE(checker.TryAppend(txns->txn(0).op(1)));
  EXPECT_EQ(checker.rejections(), 1u);
  EXPECT_EQ(checker.executed_count(), 3u);
  // Retry is still rejected (arcs only grow), but state stays coherent.
  EXPECT_FALSE(checker.TryAppend(txns->txn(0).op(1)));
  EXPECT_EQ(checker.rejections(), 2u);
}

TEST(OnlineChecker, RemoveTransactionEnablesRetry) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  const AtomicitySpec spec = AbsoluteSpec(*txns);
  OnlineRsrChecker checker(*txns, spec);
  EXPECT_TRUE(checker.TryAppend(txns->txn(0).op(0)));
  EXPECT_TRUE(checker.TryAppend(txns->txn(1).op(0)));
  EXPECT_TRUE(checker.TryAppend(txns->txn(1).op(1)));
  EXPECT_FALSE(checker.TryAppend(txns->txn(0).op(1)));
  // Abort T1 and replay it after T2: now serial, accepted.
  checker.RemoveTransaction(0);
  EXPECT_EQ(checker.executed_count(), 2u);
  EXPECT_FALSE(checker.Executed(0, 0));
  EXPECT_TRUE(checker.TryAppend(txns->txn(0).op(0)));
  EXPECT_TRUE(checker.TryAppend(txns->txn(0).op(1)));
  EXPECT_EQ(checker.executed_count(), 4u);
}

TEST(OnlineChecker, BreakpointsAdmitTheSandwich) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  AtomicitySpec spec(*txns);
  spec.SetBreakpoint(0, 1, 0);
  spec.SetBreakpoint(1, 0, 0);
  OnlineRsrChecker checker(*txns, spec);
  EXPECT_TRUE(checker.TryAppend(txns->txn(0).op(0)));
  EXPECT_TRUE(checker.TryAppend(txns->txn(1).op(0)));
  EXPECT_TRUE(checker.TryAppend(txns->txn(1).op(1)));
  EXPECT_TRUE(checker.TryAppend(txns->txn(0).op(1)));
  EXPECT_EQ(checker.rejections(), 0u);
}

TEST(OnlineChecker, FullyRelaxedSpecNeverRejects) {
  Rng rng(0xFEEDFACE);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.object_count = 2;
    wp.read_ratio = 0.2;  // heavy conflicts
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = FullyRelaxedSpec(txns);
    const Schedule schedule = RandomSchedule(txns, &rng);
    EXPECT_EQ(OnlineRsrChecker::FirstRejection(txns, spec, schedule),
              schedule.size());
  }
}

TEST(OnlineChecker, RejectionPositionIsMinimal) {
  // Every proper prefix before the first rejection must itself be a
  // relatively serializable partial execution: check by classifying the
  // completed prefix... here we verify the weaker but crisp property that
  // rejection happens exactly at the first position where the offline
  // test on the full schedule's own prefix-graph turns cyclic.
  Rng rng(0xABC);
  int rejected_cases = 0;
  for (int round = 0; round < 200 && rejected_cases < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 2;
    wp.read_ratio = 0.3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.2, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const std::size_t rejection =
        OnlineRsrChecker::FirstRejection(txns, spec, schedule);
    if (rejection == schedule.size()) continue;
    ++rejected_cases;
    // Feeding a fresh checker the prefix (without the rejected op) must
    // succeed completely.
    OnlineRsrChecker checker(txns, spec);
    for (std::size_t pos = 0; pos < rejection; ++pos) {
      EXPECT_TRUE(checker.TryAppend(schedule.op(pos)));
    }
    EXPECT_FALSE(checker.TryAppend(schedule.op(rejection)));
  }
  EXPECT_GE(rejected_cases, 10);
}

TEST(Dot, ExportsNodesAndLabeledEdges) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  DotOptions options;
  options.name = "test";
  options.node_label = [](NodeId node) { return "op" + std::to_string(node); };
  options.edge_label = [](NodeId from, NodeId to) {
    return from == 0 && to == 1 ? "D" : "";
  };
  const std::string dot = ToDot(graph, options);
  EXPECT_NE(dot.find("digraph test {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"op0\"];"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1 [label=\"D\"];"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2;"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  Digraph graph(1);
  DotOptions options;
  options.node_label = [](NodeId) { return std::string("a\"b"); };
  const std::string dot = ToDot(graph, options);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace relser
