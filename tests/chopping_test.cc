// Tests for the transaction-chopping analyzer [SSV92] and its bridge to
// unit locking: a correct chopping certifies that early release at the
// piece boundaries preserves conflict serializability.
#include <gtest/gtest.h>

#include "model/chopping.h"
#include "model/text.h"
#include "sched/engine.h"
#include "sched/lock_based.h"
#include "sched/verify.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace relser {
namespace {

TEST(Chopping, UnchoppedIsAlwaysCorrect) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[x]\nT2 = r2[x] w2[x]\nT3 = w3[x]\n");
  const ChoppingAnalysis analysis = AnalyzeUnchopped(*txns);
  EXPECT_TRUE(analysis.correct);
  EXPECT_EQ(analysis.pieces.size(), 3u);
  EXPECT_EQ(analysis.c_edges, 0u);
  EXPECT_GT(analysis.s_edges, 0u);
}

TEST(Chopping, ClassicIncorrectChop) {
  // Chopping T1 = r1[x] w1[x] into two pieces against T2 = r2[x] w2[x]
  // (unchopped): both pieces of T1 conflict with T2's piece, so the
  // C-edge and the two S-edges form an SC-cycle -> incorrect.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x] w2[x]\n");
  const ChoppingAnalysis analysis = AnalyzeChopping(*txns, {{0}, {}});
  EXPECT_FALSE(analysis.correct);
  ASSERT_TRUE(analysis.mixed_component.has_value());
  EXPECT_GE(analysis.mixed_component->size(), 3u);
  EXPECT_EQ(analysis.c_edges, 1u);
  EXPECT_EQ(analysis.s_edges, 2u);
}

TEST(Chopping, DisjointPiecesChopCorrectly) {
  // T1's pieces touch disjoint objects conflicting with different
  // transactions: no S-path reconnects the siblings -> correct.
  auto txns = ParseTransactionSet(
      "T1 = w1[x] w1[y]\nT2 = r2[x]\nT3 = r3[y]\n");
  const ChoppingAnalysis analysis = AnalyzeChopping(*txns, {{0}, {}, {}});
  EXPECT_TRUE(analysis.correct);
  EXPECT_EQ(analysis.pieces.size(), 4u);
}

TEST(Chopping, IndirectSPathMakesChopIncorrect) {
  // T1's pieces conflict with T2's and T3's pieces, and T2 and T3
  // conflict with each other: the S-edges close a path between T1's
  // siblings -> SC-cycle through multiple transactions.
  auto txns = ParseTransactionSet(
      "T1 = w1[x] w1[y]\nT2 = r2[x] w2[z]\nT3 = r3[z] r3[y]\n");
  const ChoppingAnalysis analysis = AnalyzeChopping(*txns, {{0}, {}, {}});
  EXPECT_FALSE(analysis.correct);
}

TEST(Chopping, MultiCEdgeCycleDetected) {
  // Two chopped transactions whose pieces interleave conflicts pairwise:
  //   T1 = w[a] w[b], T2 = w[a] w[b], both chopped.
  // Cycle p11 -C- p12 -S- p22 -C- p21 -S- p11 mixes C and S edges even
  // though no single transaction's siblings are S-connected directly.
  auto txns = ParseTransactionSet("T1 = w1[a] w1[b]\nT2 = w2[a] w2[b]\n");
  const ChoppingAnalysis analysis = AnalyzeChopping(*txns, {{0}, {0}});
  EXPECT_FALSE(analysis.correct);
}

TEST(Chopping, ReadOnlySiblingsChopFreely) {
  auto txns = ParseTransactionSet(
      "T1 = r1[x] r1[y] r1[z]\nT2 = r2[x] r2[y]\n");
  const ChoppingAnalysis analysis =
      AnalyzeChopping(*txns, {{0, 1}, {0}});
  EXPECT_TRUE(analysis.correct);  // reads never conflict: no S-edges
  EXPECT_EQ(analysis.s_edges, 0u);
}

TEST(Chopping, PieceBoundariesRespectProgramOrder) {
  auto txns = ParseTransactionSet("T1 = w1[a] w1[b] w1[c]\nT2 = r2[q]\n");
  const ChoppingAnalysis analysis = AnalyzeChopping(*txns, {{1}, {}});
  ASSERT_EQ(analysis.pieces.size(), 3u);
  EXPECT_EQ(analysis.pieces[0], (Piece{0, 0, 1}));
  EXPECT_EQ(analysis.pieces[1], (Piece{0, 2, 2}));
  EXPECT_EQ(analysis.pieces[2], (Piece{1, 0, 0}));
}

TEST(Chopping, CorrectChoppingCertifiesUnitLocking) {
  // When the spec's universal breakpoints induce a *correct* chopping,
  // unit-2PL executions must be conflict serializable (not merely
  // relatively serializable).
  Rng rng(0xC0C0);
  int correct_chops = 0;
  for (int round = 0; round < 200 && correct_chops < 12; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    wp.min_ops_per_txn = 2;
    wp.max_ops_per_txn = 5;
    wp.object_count = 10;  // low contention: correct chops exist
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    // Uniform-observer spec: every breakpoint is universal.
    AtomicitySpec spec(txns);
    std::vector<std::vector<std::uint32_t>> gaps(txns.txn_count());
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      for (std::uint32_t g = 0; g + 1 < txns.txn(t).size(); ++g) {
        if (rng.Bernoulli(0.5)) {
          gaps[t].push_back(g);
          for (TxnId j = 0; j < txns.txn_count(); ++j) {
            if (j != t) spec.SetBreakpoint(t, j, g);
          }
        }
      }
    }
    const ChoppingAnalysis analysis = AnalyzeChopping(txns, gaps);
    if (!analysis.correct) continue;
    ++correct_chops;
    UnitLockScheduler scheduler(txns, spec);
    SimParams sp;
    sp.seed = rng.Next();
    const SimResult result = RunSimulation(txns, &scheduler, sp);
    ASSERT_TRUE(result.metrics.completed);
    const RunVerification verification =
        VerifyRun(txns, spec, result, Guarantee::kConflictSerializable);
    EXPECT_TRUE(verification.guarantee_held)
        << "correct chopping but non-serializable unit-2PL execution "
        << "(round " << round << ")";
  }
  EXPECT_GE(correct_chops, 5);
}

}  // namespace
}  // namespace relser
