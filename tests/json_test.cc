// Round-trip and robustness tests for util/json's writer + parser (the
// substrate of both the bench snapshots and the obs/ trace sinks).
#include <gtest/gtest.h>

#include "util/json.h"

namespace relser {
namespace {

TEST(JsonWriter, RoundTripsThroughParser) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("relser \"quoted\" \\ path\n");
  w.Key("count");
  w.Int(-42);
  w.Key("ratio");
  w.Double(0.125);
  w.Key("flag");
  w.Bool(true);
  w.Key("missing");
  w.Null();
  w.Key("items");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.EndArray();
  w.EndObject();

  const auto parsed = JsonValue::Parse(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("name")->string_value(),
            "relser \"quoted\" \\ path\n");
  EXPECT_EQ(parsed->Find("count")->number_value(), -42.0);
  EXPECT_EQ(parsed->Find("ratio")->number_value(), 0.125);
  EXPECT_TRUE(parsed->Find("flag")->bool_value());
  EXPECT_TRUE(parsed->Find("missing")->is_null());
  ASSERT_NE(parsed->Find("items"), nullptr);
  ASSERT_EQ(parsed->Find("items")->array_items().size(), 2u);
  EXPECT_EQ(parsed->Find("items")->array_items()[1].number_value(), 2.0);
  EXPECT_EQ(parsed->Find("absent"), nullptr);
}

TEST(JsonParser, AcceptsUnicodeEscapes) {
  const auto parsed = JsonValue::Parse("{\"s\":\"a\\u00e9A\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->string_value(), "a\xc3\xa9"
                                               "A");
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("01x").ok());
}

TEST(JsonParser, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  std::string shallow = "[[[[[[1]]]]]]";
  EXPECT_TRUE(JsonValue::Parse(shallow).ok());
}

}  // namespace
}  // namespace relser
