// Tests for conflict analysis: conflict pairs, conflict equivalence, the
// serialization graph SG(S) and the classical conflict-serializability
// test (the paper's baseline theory, [Pap79, BSW79]).
#include <gtest/gtest.h>

#include "graph/cycle.h"
#include "model/conflict.h"
#include "model/enumerate.h"
#include "model/text.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace relser {
namespace {

TEST(ConflictPairs, EnumeratesOrderedConflicts) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[y]\nT2 = w2[x] r2[y]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] w2[x] w1[y] r2[y]");
  ASSERT_TRUE(schedule.ok());
  const auto pairs = ConflictPairs(*schedule);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(ToString(*txns, pairs[0].first), "r1[x]");
  EXPECT_EQ(ToString(*txns, pairs[0].second), "w2[x]");
  EXPECT_EQ(ToString(*txns, pairs[1].first), "w1[y]");
  EXPECT_EQ(ToString(*txns, pairs[1].second), "r2[y]");
}

TEST(ConflictPairs, ReadOnlyScheduleHasNone) {
  auto txns = ParseTransactionSet("T1 = r1[x] r1[y]\nT2 = r2[x] r2[y]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] r2[x] r1[y] r2[y]");
  EXPECT_TRUE(ConflictPairs(*schedule).empty());
}

TEST(ConflictEquivalent, DetectsFlippedConflict) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = w2[x]\n");
  auto a = ParseSchedule(*txns, "w1[x] w2[x]");
  auto b = ParseSchedule(*txns, "w2[x] w1[x]");
  EXPECT_TRUE(ConflictEquivalent(*txns, *a, *a));
  EXPECT_FALSE(ConflictEquivalent(*txns, *a, *b));
  EXPECT_FALSE(ConflictEquivalent(*txns, *b, *a));  // symmetric
}

TEST(ConflictEquivalent, IgnoresNonConflictingReordering) {
  auto txns = ParseTransactionSet("T1 = r1[x]\nT2 = r2[y]\n");
  auto a = ParseSchedule(*txns, "r1[x] r2[y]");
  auto b = ParseSchedule(*txns, "r2[y] r1[x]");
  EXPECT_TRUE(ConflictEquivalent(*txns, *a, *b));
}

TEST(SerializationGraph, ClassicNonSerializableExample) {
  // Lost update: r1[x] r2[x] w1[x] w2[x] -> SG has a 2-cycle.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x] w2[x]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] r2[x] w1[x] w2[x]");
  const Digraph sg = SerializationGraph(*txns, *schedule);
  EXPECT_TRUE(sg.HasEdge(0, 1));
  EXPECT_TRUE(sg.HasEdge(1, 0));
  EXPECT_FALSE(IsConflictSerializable(*txns, *schedule));
  EXPECT_FALSE(SerializationOrder(*txns, *schedule).has_value());
}

TEST(SerializationGraph, SerializableInterleaving) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x] w2[x]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] w1[x] r2[x] w2[x]");
  EXPECT_TRUE(IsConflictSerializable(*txns, *schedule));
  const auto order = SerializationOrder(*txns, *schedule);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<TxnId>{0, 1}));
}

TEST(SerializationGraph, SerializationOrderIsConsistentWitness) {
  // A serializable but non-serial interleaving: the order must replay to
  // a conflict-equivalent serial schedule.
  auto txns = ParseTransactionSet(
      "T1 = r1[x] w1[y]\nT2 = r2[y] w2[z]\nT3 = r3[z] w3[x]\n");
  auto schedule =
      ParseSchedule(*txns, "r1[x] r2[y] w1[y] r3[z] w2[z] w3[x]");
  ASSERT_TRUE(schedule.ok());
  const auto order = SerializationOrder(*txns, *schedule);
  if (order.has_value()) {
    auto serial = Schedule::Serial(*txns, *order);
    ASSERT_TRUE(serial.ok());
    EXPECT_TRUE(ConflictEquivalent(*txns, *schedule, *serial));
  } else {
    EXPECT_FALSE(IsConflictSerializable(*txns, *schedule));
  }
}

TEST(SerializationGraph, SerialSchedulesAlwaysSerializable) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    WorkloadParams wp;
    wp.txn_count = 4;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule serial = RandomSerialSchedule(txns, &rng);
    EXPECT_TRUE(IsConflictSerializable(txns, serial));
  }
}

// Oracle cross-check: a schedule is conflict serializable iff some serial
// schedule is conflict equivalent to it (checked by enumerating all n!
// serial orders on small sets).
TEST(SerializationGraph, SgTestMatchesSerialEnumeration) {
  Rng rng(1234);
  for (int round = 0; round < 60; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 3;
    wp.object_count = 2;
    wp.read_ratio = 0.4;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    bool any_serial_equivalent = false;
    std::vector<TxnId> perm = {0, 1, 2};
    std::sort(perm.begin(), perm.end());
    do {
      auto serial = Schedule::Serial(txns, perm);
      ASSERT_TRUE(serial.ok());
      any_serial_equivalent =
          any_serial_equivalent || ConflictEquivalent(txns, schedule, *serial);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(IsConflictSerializable(txns, schedule), any_serial_equivalent)
        << "round " << round;
  }
}

// ------------------------------------------------------------- enumerate

TEST(Enumerate, CountMatchesMultinomial) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[y]\n");
  // 3!/2!/1! = 3 interleavings.
  EXPECT_EQ(EnumerationCount(*txns), 3u);
  std::size_t visited = 0;
  EnumerateSchedules(*txns, [&](const Schedule&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 3u);
}

TEST(Enumerate, VisitsDistinctValidSchedules) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[x] r2[y]\n");
  std::set<std::string> seen;
  EnumerateSchedules(*txns, [&](const Schedule& schedule) {
    seen.insert(ToString(*txns, schedule));
    return true;
  });
  EXPECT_EQ(seen.size(), EnumerationCount(*txns));
  EXPECT_EQ(seen.size(), 6u);  // 4!/(2!2!)
}

TEST(Enumerate, EarlyStopHonored) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[x] r2[y]\n");
  std::size_t visited = 0;
  const std::uint64_t total = EnumerateSchedules(*txns, [&](const Schedule&) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(total, 3u);
}

TEST(Enumerate, CountSaturatesInsteadOfOverflowing) {
  TransactionSet txns;
  const ObjectId x = txns.InternObject("x");
  for (int t = 0; t < 30; ++t) {
    Transaction* txn = txns.AddTransaction();
    for (int k = 0; k < 10; ++k) txn->Read(x);
  }
  EXPECT_EQ(EnumerationCount(txns),
            std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace relser
