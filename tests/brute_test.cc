// Tests for the brute-force reference procedures: budgets, memoization
// equivalence, witness properties, and the hard-instance family used by
// the complexity bench.
#include <gtest/gtest.h>

#include "core/brute.h"
#include "core/checkers.h"
#include "core/paper_examples.h"
#include "core/rsr.h"
#include "model/conflict.h"
#include "util/rng.h"
#include "workload/adversarial.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(BruteForce, SerialScheduleIsTriviallyConsistent) {
  Rng rng(1);
  WorkloadParams wp;
  wp.txn_count = 3;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, 0.3, &rng);
  const Schedule serial = RandomSerialSchedule(txns, &rng);
  const BruteForceResult result = IsRelativelyConsistent(txns, serial, spec);
  ASSERT_TRUE(result.IsYes());
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(IsRelativelyAtomic(txns, *result.witness, spec));
}

TEST(BruteForce, BudgetExhaustionReturnsUndecided) {
  const HardInstance instance = PaddedFigure4Instance(8);
  const BruteForceResult result = IsRelativelyConsistent(
      instance.txns, instance.schedule, instance.spec, /*max_states=*/100,
      /*memoize=*/false);
  EXPECT_FALSE(result.decided.has_value());
  EXPECT_FALSE(result.stats.exhausted);
  EXPECT_LE(result.stats.states_visited, 101u);
}

TEST(BruteForce, MemoizationPreservesAnswers) {
  Rng rng(2);
  for (int round = 0; round < 60; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const BruteForceResult with_memo =
        IsRelativelyConsistent(txns, schedule, spec, 0, true);
    const BruteForceResult without_memo =
        IsRelativelyConsistent(txns, schedule, spec, 0, false);
    ASSERT_TRUE(with_memo.decided.has_value());
    ASSERT_TRUE(without_memo.decided.has_value());
    EXPECT_EQ(*with_memo.decided, *without_memo.decided);
    EXPECT_LE(with_memo.stats.states_visited,
              without_memo.stats.states_visited);
  }
}

TEST(BruteForce, WitnessOfRelativeSerializabilityIsValid) {
  Rng rng(3);
  int yes = 0;
  for (int round = 0; round < 80 && yes < 25; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 3;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.4, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const BruteForceResult result =
        BruteForceRelativelySerializable(txns, schedule, spec);
    ASSERT_TRUE(result.decided.has_value());
    if (!*result.decided) continue;
    ++yes;
    ASSERT_TRUE(result.witness.has_value());
    EXPECT_TRUE(IsRelativelySerial(txns, *result.witness, spec));
    EXPECT_TRUE(ConflictEquivalent(txns, schedule, *result.witness));
  }
  EXPECT_GE(yes, 20);
}

TEST(HardInstance, CoreMatchesFigure4) {
  const HardInstance instance = PaddedFigure4Instance(0);
  const PaperExample fig = Figure4();
  EXPECT_EQ(instance.txns.txn_count(), 4u);
  EXPECT_EQ(instance.schedule.size(), 8u);
  EXPECT_TRUE(
      IsRelativelySerial(instance.txns, instance.schedule, instance.spec));
  const BruteForceResult rc =
      IsRelativelyConsistent(instance.txns, instance.schedule, instance.spec);
  EXPECT_TRUE(rc.IsNo());
}

TEST(HardInstance, PaddingPreservesTheAnswer) {
  for (const std::size_t k : {1u, 3u, 5u}) {
    const HardInstance instance = PaddedFigure4Instance(k);
    EXPECT_EQ(instance.txns.txn_count(), 4u + k);
    EXPECT_TRUE(IsRelativelySerializable(instance.txns, instance.schedule,
                                         instance.spec));
    const BruteForceResult rc = IsRelativelyConsistent(
        instance.txns, instance.schedule, instance.spec);
    EXPECT_TRUE(rc.IsNo()) << "k=" << k;
    // The padded schedule stays relatively serial (free txns run as
    // trailing blocks and depend on nothing).
    EXPECT_TRUE(
        IsRelativelySerial(instance.txns, instance.schedule, instance.spec));
  }
}

TEST(HardInstance, SearchEffortGrowsWithPadding) {
  const HardInstance small_instance = PaddedFigure4Instance(2);
  const BruteForceResult small =
      IsRelativelyConsistent(small_instance.txns, small_instance.schedule,
                             small_instance.spec, 0, /*memoize=*/false);
  const HardInstance big_instance = PaddedFigure4Instance(6);
  const BruteForceResult big =
      IsRelativelyConsistent(big_instance.txns, big_instance.schedule,
                             big_instance.spec, 0, /*memoize=*/false);
  EXPECT_GT(big.stats.states_visited, 10 * small.stats.states_visited);
}

}  // namespace
}  // namespace relser
