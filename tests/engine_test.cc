// Tests for the simulation engine itself: request sequencing, think
// times, arrival ticks, latency accounting, restart/cascade mechanics.
// Uses scripted schedulers to exercise specific engine paths.
#include <gtest/gtest.h>

#include <functional>

#include "model/text.h"
#include "sched/engine.h"
#include "sched/serial.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace relser {
namespace {

// Scheduler whose OnRequest defers to a user-supplied function.
class ScriptedScheduler : public Scheduler {
 public:
  using Handler = std::function<AdmitOutcome(const Operation&)>;
  explicit ScriptedScheduler(Handler handler)
      : handler_(std::move(handler)) {}

  AdmitResult OnRequest(const Operation& op) override {
    return AdmitResult{handler_(op), {}, op.txn};
  }
  void OnCommit(TxnId txn) override { committed.push_back(txn); }
  void OnAbort(TxnId txn) override { aborted.push_back(txn); }
  std::string name() const override { return "scripted"; }

  std::vector<TxnId> committed;
  std::vector<TxnId> aborted;

 private:
  Handler handler_;
};

TransactionSet SmallSet() {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = w2[x]\n");
  RELSER_CHECK(txns.ok());
  return *std::move(txns);
}

TEST(Engine, GrantEverythingCompletesAndLogsAllOps) {
  const TransactionSet txns = SmallSet();
  ScriptedScheduler scheduler([](const Operation&) {
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  const SimResult result = RunSimulation(txns, &scheduler, params);
  EXPECT_TRUE(result.metrics.completed);
  EXPECT_EQ(result.metrics.committed_ops, 3u);
  EXPECT_EQ(result.metrics.aborts, 0u);
  EXPECT_EQ(scheduler.committed.size(), 2u);
  auto schedule = result.CommittedSchedule(txns);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->size(), 3u);
}

TEST(Engine, RequestsArriveInProgramOrder) {
  const TransactionSet txns = SmallSet();
  std::vector<std::uint32_t> seen_index(txns.txn_count(), 0);
  ScriptedScheduler scheduler([&](const Operation& op) {
    EXPECT_EQ(op.index, seen_index[op.txn]);
    ++seen_index[op.txn];
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  RunSimulation(txns, &scheduler, params);
  EXPECT_EQ(seen_index[0], 2u);
  EXPECT_EQ(seen_index[1], 1u);
}

TEST(Engine, BlockedTransactionRetriesNextTick) {
  const TransactionSet txns = SmallSet();
  int t2_requests = 0;
  ScriptedScheduler scheduler([&](const Operation& op) {
    if (op.txn == 1) {
      ++t2_requests;
      return t2_requests < 4 ? AdmitOutcome::kRetry : AdmitOutcome::kAccept;
    }
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  const SimResult result = RunSimulation(txns, &scheduler, params);
  EXPECT_TRUE(result.metrics.completed);
  EXPECT_EQ(t2_requests, 4);
  EXPECT_EQ(result.metrics.blocks, 3u);
}

TEST(Engine, MaxTicksBoundsIncompleteRuns) {
  const TransactionSet txns = SmallSet();
  ScriptedScheduler scheduler([](const Operation& op) {
    return op.txn == 1 ? AdmitOutcome::kRetry : AdmitOutcome::kAccept;
  });
  SimParams params;
  params.max_ticks = 25;
  const SimResult result = RunSimulation(txns, &scheduler, params);
  EXPECT_FALSE(result.metrics.completed);
  EXPECT_EQ(result.metrics.makespan, 25u);
  // T1 committed; its ops appear in the log, T2's do not.
  EXPECT_EQ(result.metrics.committed_ops, 2u);
  EXPECT_EQ(result.commit_tick[1], static_cast<std::size_t>(-1));
}

TEST(Engine, ThinkTimeSpacesOperations) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x] r1[y]\n");
  ScriptedScheduler scheduler([](const Operation&) {
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  params.think_time = {4};
  const SimResult result = RunSimulation(*txns, &scheduler, params);
  ASSERT_TRUE(result.metrics.completed);
  ASSERT_EQ(result.log.size(), 3u);
  EXPECT_EQ(result.log[1].tick - result.log[0].tick, 5u);
  EXPECT_EQ(result.log[2].tick - result.log[1].tick, 5u);
}

TEST(Engine, StartTickDelaysArrival) {
  const TransactionSet txns = SmallSet();
  std::size_t first_t2_tick = static_cast<std::size_t>(-1);
  ScriptedScheduler scheduler([&](const Operation&) {
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  params.start_tick = {0, 10};
  const SimResult result = RunSimulation(txns, &scheduler, params);
  ASSERT_TRUE(result.metrics.completed);
  for (const CommittedOp& entry : result.log) {
    if (entry.op.txn == 1) {
      first_t2_tick = entry.tick;
      break;
    }
  }
  EXPECT_GE(first_t2_tick, 10u);
  (void)first_t2_tick;
  // Latency is measured from arrival, not from tick 0.
  EXPECT_EQ(result.latency[1], result.commit_tick[1] - 10);
}

TEST(Engine, AbortRestartsFromFirstOperation) {
  const TransactionSet txns = SmallSet();
  int t1_first_op_requests = 0;
  bool aborted_once = false;
  ScriptedScheduler scheduler([&](const Operation& op) {
    if (op.txn == 0 && op.index == 0) ++t1_first_op_requests;
    if (op.txn == 0 && op.index == 1 && !aborted_once) {
      aborted_once = true;
      return AdmitOutcome::kAborted;
    }
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  const SimResult result = RunSimulation(txns, &scheduler, params);
  EXPECT_TRUE(result.metrics.completed);
  EXPECT_EQ(result.metrics.aborts, 1u);
  EXPECT_EQ(t1_first_op_requests, 2);  // initial run + restart
  EXPECT_EQ(result.metrics.wasted_ops, 1u);  // the discarded r1[x]
  EXPECT_EQ(scheduler.aborted.size(), 1u);
  // Final committed schedule contains each op exactly once.
  auto schedule = result.CommittedSchedule(txns);
  ASSERT_TRUE(schedule.ok());
}

TEST(Engine, CascadeAbortsDependentTransaction) {
  // T2 writes x, T1 reads x afterwards (dependency), then T2 aborts:
  // the engine must cascade-abort T1.
  auto txns = ParseTransactionSet("T1 = r1[x] r1[y]\nT2 = w2[x] w2[z]\n");
  // Script: grant everything until T2 requests w2[z] after T1 executed
  // r1[x]; then abort T2 once.
  bool t2_aborted = false;
  std::vector<Operation> granted;
  ScriptedScheduler scheduler([&](const Operation& op) {
    if (op.txn == 1 && op.index == 1 && !t2_aborted) {
      bool t1_depends = false;
      for (const Operation& g : granted) {
        if (g.txn == 0 && g.index == 0) t1_depends = true;
      }
      if (t1_depends) {
        t2_aborted = true;
        return AdmitOutcome::kAborted;
      }
    }
    granted.push_back(op);
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  params.seed = 42;
  // Force the interleaving: T2 first (writes x), then T1 reads x.
  params.start_tick = {1, 0};
  const SimResult result = RunSimulation(*txns, &scheduler, params);
  ASSERT_TRUE(result.metrics.completed);
  if (t2_aborted) {
    EXPECT_EQ(result.metrics.aborts, 1u);
    EXPECT_EQ(result.metrics.cascade_aborts, 1u);
    // Both transactions were told to abort.
    EXPECT_EQ(scheduler.aborted.size(), 2u);
  }
}

TEST(Engine, SerialSchedulerIntegrationIsDeterministic) {
  Rng rng(7);
  WorkloadParams wp;
  wp.txn_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  SimParams params;
  params.seed = 123;
  SerialScheduler s1;
  SerialScheduler s2;
  const SimResult a = RunSimulation(txns, &s1, params);
  const SimResult b = RunSimulation(txns, &s2, params);
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i].op, b.log[i].op);
    EXPECT_EQ(a.log[i].tick, b.log[i].tick);
  }
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
}

TEST(Engine, MeanActiveTxnsWithinBounds) {
  Rng rng(8);
  WorkloadParams wp;
  wp.txn_count = 5;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  ScriptedScheduler scheduler([](const Operation&) {
    return AdmitOutcome::kAccept;
  });
  SimParams params;
  const SimResult result = RunSimulation(txns, &scheduler, params);
  EXPECT_GE(result.metrics.mean_active_txns, 0.0);
  EXPECT_LE(result.metrics.mean_active_txns, 5.0);
}

}  // namespace
}  // namespace relser
