// Tests for the execution substrate (src/exec/): thread-pool lifecycle
// and churn, ParallelFor coverage, bounded MPSC queue ordering under a
// producer storm, and the hard determinism contract of the parallel
// analysis sweeps (census and brute-force results bit-identical to
// serial for every pool size).
//
// gtest assertions are not thread-safe, so worker threads only fill
// pre-sized slots or touch atomics; the main thread does the asserting.
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute.h"
#include "exec/mpsc_queue.h"
#include "exec/thread_pool.h"
#include "model/schedule.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/census.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ChurnConstructDestroy) {
  // Repeatedly build and tear down pools with work in flight; shutdown
  // must drain every submitted task exactly once.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> counter{0};
    {
      ThreadPool pool(1 + static_cast<std::size_t>(round % 4));
      for (int i = 0; i < 50; ++i) {
        pool.Submit(
            [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    }  // destructor joins
    EXPECT_EQ(counter.load(), 50) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  int ran = 0;
  ParallelFor(&pool, 0, 10, 1, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_GT(ran, 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  ParallelFor(&pool, 0, kN, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolAndEmptyRange) {
  std::size_t sum = 0;
  ParallelFor(nullptr, 5, 10, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 5u + 6 + 7 + 8 + 9);
  bool ran = false;
  ParallelFor(nullptr, 3, 3, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> queue(64);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(queue.TryEnqueue(i));
  int value = -1;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(queue.TryDequeue(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.TryDequeue(&value));
}

TEST(MpscQueueTest, ProducerStormPreservesPerProducerOrder) {
  // 8 producers, each enqueueing an increasing sequence tagged with its
  // id; the single consumer must see each producer's items in order and
  // every item exactly once. Capacity is far below the item count, so
  // the blocking Enqueue path (ring full -> spin/yield) is exercised.
  constexpr std::uint64_t kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2'000;
  MpscQueue<std::uint64_t> queue(128);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        queue.Enqueue(p << 32 | i);
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t consumed = 0;
  std::uint64_t order_violations = 0;
  while (consumed < kProducers * kPerProducer) {
    std::uint64_t item = 0;
    if (!queue.TryDequeue(&item)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = item >> 32;
    const std::uint64_t seq = item & 0xffffffffu;
    if (seq != next[p]) ++order_violations;
    next[p] = seq + 1;
    ++consumed;
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(order_violations, 0u);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer) << "producer " << p;
  }
}

TEST(DeterminismTest, CensusBitIdenticalAcrossPoolSizes) {
  CensusParams params;
  params.workloads_per_family = 6;
  params.schedules_per_workload = 6;
  const std::vector<CensusCounts> reference = RunClassCensus(params, nullptr);
  ASSERT_EQ(reference.size(), params.families.size());
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    const std::vector<CensusCounts> rows = RunClassCensus(params, &pool);
    EXPECT_TRUE(rows == reference) << "pool size " << threads;
  }
}

TEST(DeterminismTest, ParallelBruteMatchesSerial) {
  const Rng base(0x5EED);
  ThreadPool pool(3);
  for (std::size_t c = 0; c < 25; ++c) {
    Rng rng = base.Split(c);
    WorkloadParams wp;
    wp.txn_count = 3 + rng.UniformIndex(2);
    wp.min_ops_per_txn = 2;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    wp.read_ratio = 0.4;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, 0.5, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);

    const BruteForceResult serial =
        IsRelativelyConsistent(txns, schedule, spec);
    const BruteForceResult inline_run =
        IsRelativelyConsistentParallel(txns, schedule, spec, nullptr);
    const BruteForceResult pooled =
        IsRelativelyConsistentParallel(txns, schedule, spec, &pool);
    // The parallel driver must agree with the serial oracle on the
    // decision and produce an equally valid witness...
    ASSERT_EQ(serial.decided, pooled.decided) << "case " << c;
    ASSERT_EQ(serial.witness.has_value(), pooled.witness.has_value())
        << "case " << c;
    // ...and be bit-identical to itself at every pool size — decision,
    // witness AND search stats (branch decomposition counts each
    // branch's root separately, so stats differ from the single-tree
    // serial search; determinism is across pool sizes).
    ASSERT_EQ(inline_run.decided, pooled.decided) << "case " << c;
    ASSERT_EQ(inline_run.witness.has_value(), pooled.witness.has_value())
        << "case " << c;
    if (inline_run.witness.has_value()) {
      EXPECT_EQ(inline_run.witness->ops(), pooled.witness->ops())
          << "case " << c;
    }
    EXPECT_EQ(inline_run.stats.states_visited, pooled.stats.states_visited)
        << "case " << c;
  }
}

}  // namespace
}  // namespace relser
