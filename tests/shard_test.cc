// Sharded admission subsystem tests (src/shard/): router partitioning
// and load distribution under Zipf skew, per-shard projection
// correctness (transactions and atomicity specs), the cross-shard
// coordinator's cycle/dead/dedup semantics, deterministic cross-shard
// reject and abort-cascade scenarios on the ShardedAdmitter, fault-plan
// driven backpressure/timeouts, and the single-shard decision-identity
// gate against ConcurrentAdmitter.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "exec/backoff.h"
#include "exec/faultplan.h"
#include "model/op_indexer.h"
#include "model/text.h"
#include "obs/trace.h"
#include "sched/admitter.h"
#include "shard/coordinator.h"
#include "shard/projection.h"
#include "shard/router.h"
#include "shard/sharded_admitter.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/shard_gen.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(ShardRouterTest, RangeStrategyAssignsContiguousBalancedRanges) {
  const ShardRouter router(64, 4, ShardStrategy::kRange);
  EXPECT_EQ(router.shard_count(), 4u);
  EXPECT_EQ(router.object_count(), 64u);
  // Contiguous: shard ids are non-decreasing across the object space,
  // and with objects_per_shard = 16 the boundaries land exactly.
  for (ObjectId o = 0; o < 64; ++o) {
    EXPECT_EQ(router.ShardOf(o), o / 16) << "object " << o;
  }
  const std::vector<std::size_t> owned = router.ObjectsPerShard();
  ASSERT_EQ(owned.size(), 4u);
  for (const std::size_t n : owned) EXPECT_EQ(n, 16u);
}

TEST(ShardRouterTest, HashStrategyCoversEveryObjectDeterministically) {
  const ShardRouter a(257, 5, ShardStrategy::kHash);  // non-divisible
  const ShardRouter b(257, 5, ShardStrategy::kHash);
  std::size_t total = 0;
  for (const std::size_t n : a.ObjectsPerShard()) {
    // Multiplicative hashing spreads 257 objects well enough that no
    // shard is starved or hoards the space.
    EXPECT_GE(n, 257u / 5 / 4);
    EXPECT_LE(n, 257u * 2 / 5);
    total += n;
  }
  EXPECT_EQ(total, 257u);
  for (ObjectId o = 0; o < 257; ++o) {
    EXPECT_LT(a.ShardOf(o), 5u);
    EXPECT_EQ(a.ShardOf(o), b.ShardOf(o)) << "router must be a pure map";
  }
}

// Load distribution under Zipf skew: the empirical per-shard access
// frequency must match the exact distribution implied by composing the
// Zipf object marginals (util/zipf) with the router's object map.
TEST(ShardRouterTest, HashShardLoadMatchesZipfMarginalsUnderSkew) {
  constexpr std::size_t kObjects = 256;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kDraws = 20000;
  const ShardRouter router(kObjects, kShards, ShardStrategy::kHash);
  for (const double theta : {0.0, 0.9}) {
    const ZipfDistribution zipf(kObjects, theta);
    std::vector<double> exact(kShards, 0.0);
    for (std::size_t k = 0; k < kObjects; ++k) {
      exact[router.ShardOf(static_cast<ObjectId>(k))] += zipf.Probability(k);
    }
    Rng rng(0x21BF + static_cast<std::uint64_t>(theta * 10));
    std::vector<std::size_t> hits(kShards, 0);
    for (std::size_t draw = 0; draw < kDraws; ++draw) {
      ++hits[router.ShardOf(static_cast<ObjectId>(zipf.Sample(&rng)))];
    }
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      const double empirical =
          static_cast<double>(hits[shard]) / static_cast<double>(kDraws);
      EXPECT_NEAR(empirical, exact[shard], 0.03)
          << "theta " << theta << " shard " << shard;
      // Hashing keeps even the theta = 0.9 hot prefix from collapsing
      // the load onto one shard.
      EXPECT_GT(exact[shard], 0.05) << "theta " << theta;
    }
  }
}

TEST(ShardRouterTest, TxnSpansClassifiesMultiShardTransactions) {
  // 4 objects over 2 range shards: {a, b} -> 0, {c, d} -> 1.
  auto txns = ParseTransactionSet(
      "T1 = w1[a] r1[b]\n"
      "T2 = w2[a] w2[c]\n"
      "T3 = r3[d] w3[c] r3[a]\n");
  ASSERT_TRUE(txns.ok());
  const ShardRouter router(txns->object_count(), 2, ShardStrategy::kRange);
  const TxnSpans spans(*txns, router);
  EXPECT_EQ(spans.ShardsOf(0), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(spans.ShardsOf(1), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(spans.ShardsOf(2), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(spans.MultiShard(0));
  EXPECT_TRUE(spans.MultiShard(1));
  EXPECT_TRUE(spans.MultiShard(2));
  EXPECT_EQ(spans.multi_shard_count(), 2u);
  EXPECT_EQ(spans.OpsOn(0, 0), 2u);
  EXPECT_EQ(spans.OpsOn(0, 1), 0u);
  EXPECT_EQ(spans.OpsOn(2, 0), 1u);
  EXPECT_EQ(spans.OpsOn(2, 1), 2u);
}

// Projection correctness on random workloads: each slice's transactions
// are exactly the owned subsequences, the index maps round-trip, and a
// projected gap carries a breakpoint iff some original gap it covers
// does.
TEST(ShardProjectionTest, SlicesMatchManualSubsequenceAndSpecWindows) {
  Rng rng(0x51CE);
  for (int round = 0; round < 50; ++round) {
    ShardedWorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(6);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 6;
    wp.shard_count = 1 + rng.UniformIndex(4);
    wp.objects_per_shard = 2 + rng.UniformIndex(3);
    wp.cross_shard_ratio = rng.UniformDouble();
    const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    ShardRouter router(txns.object_count(),
                       static_cast<std::size_t>(wp.shard_count),
                       rng.Bernoulli(0.5) ? ShardStrategy::kRange
                                          : ShardStrategy::kHash);
    const ShardPlan plan(txns, spec, router);
    for (std::uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
      const ShardSlice& slice = plan.slice(shard);
      ASSERT_EQ(slice.txns.txn_count(), txns.txn_count());
      ASSERT_EQ(slice.txns.object_count(), txns.object_count());
      for (TxnId t = 0; t < txns.txn_count(); ++t) {
        // Owned subsequence, in program order.
        std::vector<std::uint32_t> owned;
        for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
          if (router.ShardOf(txns.txn(t).op(i).object) == shard) {
            owned.push_back(i);
          }
        }
        ASSERT_EQ(slice.txns.txn(t).size(), owned.size())
            << "round " << round << " shard " << shard << " T" << t;
        for (std::uint32_t g = 0; g < owned.size(); ++g) {
          const Operation& original = txns.txn(t).op(owned[g]);
          const Operation& projected = slice.txns.txn(t).op(g);
          EXPECT_EQ(projected.object, original.object);
          EXPECT_EQ(projected.type, original.type);
          EXPECT_EQ(slice.to_original[t][g], owned[g]);
          EXPECT_EQ(slice.to_projected[t][owned[g]], g);
          EXPECT_EQ(slice.Project(original).index, g);
          EXPECT_EQ(slice.Unproject(projected).index, owned[g]);
        }
        // Spec windows: projected gap g spans original gaps
        // [owned[g], owned[g+1]).
        for (TxnId j = 0; j < txns.txn_count(); ++j) {
          if (j == t || owned.size() < 2) continue;
          for (std::uint32_t g = 0; g + 1 < owned.size(); ++g) {
            bool expected = false;
            for (std::uint32_t h = owned[g]; h < owned[g + 1]; ++h) {
              if (spec.HasBreakpoint(t, j, h)) expected = true;
            }
            EXPECT_EQ(slice.spec.HasBreakpoint(t, j, g), expected)
                << "round " << round << " shard " << shard << " T" << t
                << " vs T" << j << " gap " << g;
          }
        }
      }
    }
  }
}

TEST(CrossShardCoordinatorTest, DetectsCyclesSkipsDeadAndDeduplicates) {
  CrossShardCoordinator coordinator(4, nullptr);
  EXPECT_EQ(coordinator.AddArcs(0, {{0, 1}}),
            CrossShardCoordinator::ArcResult::kOk);
  EXPECT_EQ(coordinator.AddArcs(1, {{1, 2}, {2, 3}}),
            CrossShardCoordinator::ArcResult::kOk);
  EXPECT_EQ(coordinator.arc_count(), 3u);
  EXPECT_EQ(coordinator.arcs_mirrored(), 3u);

  // 3 -> 0 closes 0 -> 1 -> 2 -> 3 into a transaction-level cycle.
  std::pair<TxnId, TxnId> witness{99, 99};
  EXPECT_EQ(coordinator.AddArcs(2, {{3, 0}}, &witness),
            CrossShardCoordinator::ArcResult::kCycle);
  EXPECT_EQ(witness, (std::pair<TxnId, TxnId>{3, 0}));
  EXPECT_EQ(coordinator.rejects(), 1u);
  EXPECT_EQ(coordinator.arc_count(), 3u) << "rejected batch retains nothing";

  // Re-submitting an already-mirrored pair is a no-op.
  EXPECT_EQ(coordinator.AddArcs(0, {{1, 2}}),
            CrossShardCoordinator::ArcResult::kOk);
  EXPECT_EQ(coordinator.arcs_mirrored(), 3u);

  // Killing T1 tombstones it but its arcs persist (durable-arc
  // discipline): the path 0 => 3 through the dead transaction still
  // pins the former cycle shut.
  coordinator.MarkDead(1);
  EXPECT_TRUE(coordinator.Dead(1));
  EXPECT_EQ(coordinator.arc_count(), 3u);
  EXPECT_EQ(coordinator.AddArcs(2, {{3, 0}}),
            CrossShardCoordinator::ArcResult::kCycle);
  EXPECT_EQ(coordinator.rejects(), 2u);
  // Arcs with a dead endpoint are still accepted...
  EXPECT_EQ(coordinator.AddArcs(0, {{0, 2}}),
            CrossShardCoordinator::ArcResult::kOk);
  EXPECT_EQ(coordinator.arc_count(), 4u);
  // ...but a dead *issuer* is told so.
  EXPECT_EQ(coordinator.AddArcs(1, {{2, 0}}),
            CrossShardCoordinator::ArcResult::kDead);
  coordinator.MarkDead(1);  // idempotent
  EXPECT_EQ(coordinator.arc_count(), 4u);
}

// The canonical cross-shard conflict the per-shard checkers cannot see:
// two multi-shard writers ordered oppositely on two shards. The
// coordinator must reject the arc batch that closes the
// transaction-level cycle, and the admitter must turn that into an
// all-or-nothing abort of the issuing transaction.
TEST(ShardedAdmitterTest, CoordinatorRejectsCrossShardWriteSkew) {
  // 2 objects over 2 range shards: a -> 0, b -> 1.
  auto txns = ParseTransactionSet(
      "T1 = w1[a] w1[b]\n"
      "T2 = w2[b] w2[a]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = FullyRelaxedSpec(*txns);
  Tracer tracer(TraceLevel::kFull);
  ShardedAdmitterOptions options;
  options.tracer = &tracer;
  ShardedAdmitter admitter(
      *txns, spec, ShardRouter(2, 2, ShardStrategy::kRange), options);

  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));  // w1[a]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));  // w2[b]
  // w1[b] conflicts behind T2 on shard 1: mirrors T2 -> T1, commits T1.
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(1)));
  EXPECT_TRUE(admitter.TxnCommitted(0));
  // w2[a] would mirror T1 -> T2: transaction-level cycle.
  EXPECT_EQ(admitter.SubmitAndWait(txns->txn(1).op(1)), AdmitOutcome::kReject);
  EXPECT_EQ(admitter.TxnVerdict(1), AdmitOutcome::kAborted);
  admitter.Stop();

  EXPECT_EQ(admitter.coordinator().rejects(), 1u);
  EXPECT_TRUE(admitter.coordinator().Dead(1));
  EXPECT_EQ(admitter.accepted(), 3u);
  EXPECT_EQ(tracer.counters().coordinator_rejects, 1u);
  EXPECT_EQ(tracer.counters().cross_shard_arcs, 1u);  // only T2 -> T1 landed
  EXPECT_EQ(tracer.counters().commits, 1u);
  EXPECT_EQ(tracer.counters().aborts, 1u);
  // Both shard cores saw traffic; the committed history is just T1.
  EXPECT_EQ(admitter.shard_stats(0).ops_routed +
                admitter.shard_stats(1).ops_routed,
            4u);
  const std::vector<Operation> log = admitter.CommittedLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].txn, 0u);
  EXPECT_EQ(log[1].txn, 0u);
}

// A client abort of a multi-shard transaction must withdraw it from
// every resident shard and cascade to live dirty readers wherever they
// live, while committed dirty readers are counted unrecoverable.
TEST(ShardedAdmitterTest, CrossShardAbortCascadesToRemoteDirtyReaders) {
  // 4 objects over 2 range shards: {p, a} -> 0, {b, c} -> 1.
  auto txns = ParseTransactionSet(
      "T1 = w1[p] w1[p]\n"
      "T2 = w2[a] w2[b] w2[a]\n"
      "T3 = r3[b] w3[c] w3[c]\n"
      "T4 = r4[a]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = FullyRelaxedSpec(*txns);
  Tracer tracer(TraceLevel::kFull);
  ShardedAdmitterOptions options;
  options.tracer = &tracer;
  ShardedAdmitter admitter(
      *txns, spec, ShardRouter(4, 2, ShardStrategy::kRange), options);

  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(0)));
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(0).op(1)));  // T1 commits
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(0)));  // w2[a], shard 0
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(1).op(1)));  // w2[b], shard 1
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(2).op(0)));  // r3[b]: dirty
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(2).op(1)));  // w3[c]
  EXPECT_TRUE(admitter.SubmitAndWait(txns->txn(3).op(0)));  // r4[a]: dirty,
  EXPECT_TRUE(admitter.TxnCommitted(3));                    // commits anyway

  EXPECT_EQ(admitter.AbortTxn(1), AdmitOutcome::kAborted);
  admitter.Flush();
  EXPECT_EQ(admitter.TxnVerdict(2), AdmitOutcome::kAborted);  // cascaded
  EXPECT_TRUE(admitter.TxnCommitted(0));
  EXPECT_TRUE(admitter.TxnCommitted(3));
  // Submitting more of a dead transaction answers with its outcome.
  EXPECT_EQ(admitter.SubmitAndWait(txns->txn(1).op(2)), AdmitOutcome::kAborted);
  EXPECT_EQ(admitter.SubmitAndWait(txns->txn(2).op(2)), AdmitOutcome::kAborted);
  admitter.Stop();

  EXPECT_EQ(admitter.unrecoverable_reads(), 1u);  // committed T4 read w2[a]
  EXPECT_TRUE(admitter.coordinator().Dead(1));
  EXPECT_TRUE(admitter.coordinator().Dead(2));
  EXPECT_EQ(admitter.coordinator().arc_count(), 2u);  // durable arcs stay
  // T2 (multi-shard, born tainted) flooded both dirty-reader arcs to the
  // coordinator, tainting the single-shard readers T3 and T4.
  EXPECT_EQ(tracer.counters().cross_shard_arcs, 2u);
  EXPECT_EQ(tracer.counters().escalations, 2u);
  EXPECT_EQ(tracer.counters().aborts, 1u);
  EXPECT_EQ(tracer.counters().cascade_aborts, 1u);
  EXPECT_EQ(tracer.counters().commits, 2u);
  // Committed history = T1 and T4 only, and it is relatively
  // serializable on the full unsharded checker.
  OnlineRsrChecker replay(*txns, spec);
  const std::vector<Operation> log = admitter.CommittedLog();
  ASSERT_EQ(log.size(), 3u);
  for (const Operation& op : log) {
    ASSERT_TRUE(replay.TryAppend(op).ok());
  }
}

// Backpressure and deadlines survive sharding: a fault plan pausing the
// shard cores makes the tiny rings refuse (kRetry) and deadlines expire
// (kTimeout); SubmitWithBackoff rides it out and whatever commits still
// replays on the full checker.
TEST(ShardedAdmitterTest, BackpressureRetriesAndTimeoutsUnderFaultPlan) {
  ShardedWorkloadParams wp;
  wp.txn_count = 24;
  wp.min_ops_per_txn = 2;
  wp.max_ops_per_txn = 3;
  wp.shard_count = 2;
  wp.objects_per_shard = 32;  // sparse: decisions themselves are trivial
  wp.cross_shard_ratio = 0.4;
  Rng rng(0x5A02);
  const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
  const AtomicitySpec spec = FullyRelaxedSpec(txns);

  FaultPlanParams fp;
  fp.core_pause_prob = 1.0;
  // Wide pauses so saturation is robust even under sanitizer slowdown:
  // a capacity-2 ring needs three submissions inside one pause window,
  // and TSan staggers the client threads by whole milliseconds.
  fp.max_core_pause_us = 20000;
  const FaultPlan plan(0x5A03, fp);

  Tracer tracer(TraceLevel::kCounters);
  ShardedAdmitterOptions options;
  options.queue_capacity = 2;  // tiny rings: backpressure is the norm
  options.tracer = &tracer;
  options.faults = &plan;
  ShardedAdmitter admitter(
      txns, spec, ShardRouter(txns.object_count(), 2, ShardStrategy::kRange),
      options);

  // One client per transaction: concurrent submissions against paused
  // cores are what actually fill the tiny rings.
  std::atomic<std::uint64_t> timeouts{0};
  std::vector<std::thread> clients;
  clients.reserve(txns.txn_count());
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    clients.emplace_back([&, t] {
      Backoff backoff(0x5A04 + t);
      for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
        const Operation& op = txns.txn(t).op(i);
        if (t % 3 == 2) {
          // Deadlines far shorter than the injected core pauses.
          const AdmitResult result = admitter.SubmitWithBackoff(
              op, backoff, std::chrono::microseconds(50));
          if (result.outcome == AdmitOutcome::kTimeout) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
          }
          if (!result.ok()) return;
        } else if (!admitter.SubmitWithBackoff(op, backoff).ok()) {
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  admitter.Stop();

  EXPECT_GT(admitter.retries(), 0u) << "tiny rings + paused cores must refuse";
  EXPECT_GT(timeouts.load(), 0u)
      << "50us deadlines under multi-ms pauses must expire";
  EXPECT_EQ(tracer.counters().retries, admitter.retries());
  EXPECT_LE(tracer.counters().timeouts, timeouts.load());
  OnlineRsrChecker replay(txns, spec);
  for (const Operation& op : admitter.CommittedLog()) {
    ASSERT_TRUE(replay.TryAppend(op).ok());
  }
}

// THE single-shard gate: with one shard the projection is the identity,
// the coordinator never hears anything (no multi-shard transactions, so
// nothing is ever tainted), and a deterministic single-threaded feed
// must produce exactly ConcurrentAdmitter's decisions, verdicts, and
// committed history — operation by operation.
TEST(ShardedAdmitterTest, SingleShardIsDecisionIdenticalToConcurrentAdmitter) {
  const Rng base(0x1D3A);
  for (int round = 0; round < 60; ++round) {
    Rng rng = base.Split(static_cast<std::uint64_t>(round));
    ShardedWorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(6);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.shard_count = 1;
    wp.objects_per_shard = 2 + rng.UniformIndex(4);  // dense: real conflicts
    wp.zipf_theta = rng.UniformDouble();
    const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);

    ConcurrentAdmitter reference(txns, spec);
    ShardedAdmitter sharded(
        txns, spec,
        ShardRouter(txns.object_count(), 1, ShardStrategy::kRange));

    // Random single-threaded interleaving with occasional client aborts
    // and occasional submissions against already-dead transactions.
    std::vector<std::uint32_t> next(txns.txn_count(), 0);
    std::vector<std::uint8_t> dead(txns.txn_count(), 0);
    std::size_t steps = txns.total_ops() + 6;
    while (steps-- > 0) {
      if (rng.Bernoulli(0.1)) {
        std::vector<TxnId> started;
        for (TxnId t = 0; t < txns.txn_count(); ++t) {
          if (dead[t] == 0 && next[t] > 0) started.push_back(t);
        }
        if (!started.empty()) {
          const TxnId victim = rng.Choice(started);
          const AdmitResult a = reference.AbortTxn(victim);
          const AdmitResult b = sharded.AbortTxn(victim);
          ASSERT_EQ(a.outcome, b.outcome)
              << "round " << round << " aborting T" << victim;
          if (a.outcome != AdmitOutcome::kReject) dead[victim] = 1;
          continue;
        }
      }
      std::vector<TxnId> feedable;
      for (TxnId t = 0; t < txns.txn_count(); ++t) {
        if (next[t] < txns.txn(t).size() &&
            (dead[t] == 0 || rng.Bernoulli(0.2))) {
          feedable.push_back(t);
        }
      }
      if (feedable.empty()) break;
      const TxnId t = rng.Choice(feedable);
      const Operation& op = txns.txn(t).op(next[t]);
      const AdmitResult a = reference.SubmitAndWait(op);
      const AdmitResult b = sharded.SubmitAndWait(op);
      ASSERT_EQ(a.outcome, b.outcome)
          << "round " << round << " T" << t << " op " << next[t];
      ++next[t];
      if (!a.ok()) dead[t] = 1;
    }
    reference.Stop();
    sharded.Stop();

    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      ASSERT_EQ(reference.TxnCommitted(t), sharded.TxnCommitted(t))
          << "round " << round << " T" << t;
    }
    ASSERT_EQ(reference.accepted(), sharded.accepted()) << "round " << round;
    ASSERT_EQ(reference.unrecoverable_reads(), sharded.unrecoverable_reads())
        << "round " << round;
    const std::vector<Operation> ref_log = reference.CommittedLog();
    const std::vector<Operation> shard_log = sharded.CommittedLog();
    ASSERT_EQ(ref_log.size(), shard_log.size()) << "round " << round;
    const OpIndexer indexer(txns);
    for (std::size_t i = 0; i < ref_log.size(); ++i) {
      ASSERT_EQ(indexer.GlobalId(ref_log[i]), indexer.GlobalId(shard_log[i]))
          << "round " << round << " position " << i;
    }
    // Single shard: nothing ever escalates to the coordinator.
    EXPECT_EQ(sharded.coordinator().arcs_mirrored(), 0u) << "round " << round;
    EXPECT_EQ(sharded.shard_stats(0).escalations, 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace relser
