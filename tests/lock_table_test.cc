// Tests for the lock table and waits-for graph used by the lock-based
// schedulers.
#include <gtest/gtest.h>

#include "sched/lock_table.h"

namespace relser {
namespace {

TEST(LockTable, SharedLocksCoexist) {
  LockTable locks;
  EXPECT_TRUE(locks.CanAcquire(0, 1, false));
  locks.Acquire(0, 1, false);
  EXPECT_TRUE(locks.CanAcquire(1, 1, false));
  locks.Acquire(1, 1, false);
  EXPECT_TRUE(locks.Holds(0, 1, false));
  EXPECT_TRUE(locks.Holds(1, 1, false));
}

TEST(LockTable, ExclusiveExcludesOthers) {
  LockTable locks;
  locks.Acquire(0, 1, true);
  EXPECT_FALSE(locks.CanAcquire(1, 1, false));
  EXPECT_FALSE(locks.CanAcquire(1, 1, true));
  EXPECT_TRUE(locks.CanAcquire(0, 1, false));  // re-entrant (X covers S)
  EXPECT_TRUE(locks.CanAcquire(0, 1, true));
  EXPECT_TRUE(locks.Holds(0, 1, true));
  EXPECT_FALSE(locks.Holds(1, 1, false));
}

TEST(LockTable, SharedBlocksExclusiveFromOthers) {
  LockTable locks;
  locks.Acquire(0, 1, false);
  EXPECT_FALSE(locks.CanAcquire(1, 1, true));
  EXPECT_TRUE(locks.CanAcquire(1, 1, false));
}

TEST(LockTable, UpgradeAllowedOnlyForSoleSharer) {
  LockTable locks;
  locks.Acquire(0, 7, false);
  EXPECT_TRUE(locks.CanAcquire(0, 7, true));  // sole sharer may upgrade
  locks.Acquire(1, 7, false);
  EXPECT_FALSE(locks.CanAcquire(0, 7, true));  // now two sharers
  locks.Release(1, 7);
  EXPECT_TRUE(locks.CanAcquire(0, 7, true));
  locks.Acquire(0, 7, true);
  EXPECT_TRUE(locks.Holds(0, 7, true));
  EXPECT_FALSE(locks.Holds(0, 7, false) && !locks.Holds(0, 7, true));
}

TEST(LockTable, BlockersListsHolders) {
  LockTable locks;
  locks.Acquire(0, 3, false);
  locks.Acquire(1, 3, false);
  const auto blockers = locks.Blockers(2, 3, true);
  EXPECT_EQ(blockers.size(), 2u);
  locks.Acquire(2, 4, true);
  const auto x_blockers = locks.Blockers(0, 4, false);
  ASSERT_EQ(x_blockers.size(), 1u);
  EXPECT_EQ(x_blockers[0], 2u);
  // No blockers on free objects or for the holder itself.
  EXPECT_TRUE(locks.Blockers(0, 9, true).empty());
  EXPECT_TRUE(locks.Blockers(2, 4, true).empty());
}

TEST(LockTable, ReleaseAllFreesEverything) {
  LockTable locks;
  locks.Acquire(0, 1, true);
  locks.Acquire(0, 2, false);
  locks.Acquire(1, 2, false);
  EXPECT_EQ(locks.HeldObjects(0), (std::vector<ObjectId>{1, 2}));
  locks.ReleaseAll(0);
  EXPECT_TRUE(locks.HeldObjects(0).empty());
  EXPECT_TRUE(locks.CanAcquire(2, 1, true));
  EXPECT_TRUE(locks.Holds(1, 2, false));  // others unaffected
}

TEST(LockTable, ReleaseSpecificObject) {
  LockTable locks;
  locks.Acquire(0, 1, true);
  locks.Acquire(0, 2, true);
  locks.Release(0, 1);
  EXPECT_FALSE(locks.Holds(0, 1, false));
  EXPECT_TRUE(locks.Holds(0, 2, true));
  locks.Release(0, 9);  // releasing a non-held lock is a no-op
}

TEST(WaitsFor, DetectsDirectCycle) {
  WaitsForGraph waits;
  waits.SetWaits(0, {1});
  EXPECT_FALSE(waits.CycleThrough(0));
  waits.SetWaits(1, {0});
  EXPECT_TRUE(waits.CycleThrough(0));
  EXPECT_TRUE(waits.CycleThrough(1));
}

TEST(WaitsFor, DetectsLongCycle) {
  WaitsForGraph waits;
  waits.SetWaits(0, {1});
  waits.SetWaits(1, {2});
  waits.SetWaits(2, {3});
  EXPECT_FALSE(waits.CycleThrough(0));
  waits.SetWaits(3, {0});
  EXPECT_TRUE(waits.CycleThrough(0));
  EXPECT_TRUE(waits.CycleThrough(3));
}

TEST(WaitsFor, SetWaitsReplacesPreviousEdges) {
  WaitsForGraph waits;
  waits.SetWaits(0, {1});
  waits.SetWaits(1, {0});
  waits.SetWaits(0, {2});  // 0 no longer waits on 1
  EXPECT_FALSE(waits.CycleThrough(0));
}

TEST(WaitsFor, ClearAndRemove) {
  WaitsForGraph waits;
  waits.SetWaits(0, {1});
  waits.SetWaits(1, {0});
  waits.ClearWaits(1);
  EXPECT_FALSE(waits.CycleThrough(0));
  waits.SetWaits(1, {0});
  waits.RemoveTxn(0);  // removes 0's edges and edges into 0
  EXPECT_FALSE(waits.CycleThrough(1));
}

TEST(WaitsFor, MultipleHolders) {
  WaitsForGraph waits;
  waits.SetWaits(0, {1, 2, 3});
  waits.SetWaits(2, {4});
  waits.SetWaits(4, {0});
  EXPECT_TRUE(waits.CycleThrough(0));
  waits.RemoveTxn(4);
  EXPECT_FALSE(waits.CycleThrough(0));
}

}  // namespace
}  // namespace relser
