// Tests for the specification-repair tool.
#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "core/repair.h"
#include "core/rsr.h"
#include "model/text.h"
#include "spec/builders.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

TEST(Repair, AcceptedScheduleNeedsNothing) {
  const PaperExample fig = Figure1();
  const SpecRepair repair =
      RepairSpec(fig.txns, fig.schedule("Srs"), fig.spec);
  EXPECT_TRUE(repair.already_serializable);
  EXPECT_TRUE(repair.added.empty());
  EXPECT_EQ(repair.repaired, fig.spec);
  EXPECT_NE(SuggestionsToString(fig.txns, repair).find("already"),
            std::string::npos);
}

TEST(Repair, SandwichNeedsExactlyTheTwoKnownConcessions) {
  // The classic sandwich: acceptable once both transactions expose their
  // single gap to each other.
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w2[y] r1[y]");
  const SpecRepair repair =
      RepairSpec(*txns, *schedule, AbsoluteSpec(*txns));
  EXPECT_FALSE(repair.already_serializable);
  EXPECT_FALSE(repair.added.empty());
  EXPECT_TRUE(
      IsRelativelySerializable(*txns, *schedule, repair.repaired));
  // The repaired spec must still be a relaxation of the input.
  EXPECT_TRUE(repair.repaired.AtLeastAsPermissiveAs(AbsoluteSpec(*txns)));
}

TEST(Repair, RepairedSpecAlwaysAccepts) {
  Rng rng(0x3E9A13);
  int repaired_cases = 0;
  for (int round = 0; round < 80; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(4);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.object_count = 2 + rng.UniformIndex(3);
    wp.read_ratio = 0.4;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble() * 0.5,
                                          &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    const SpecRepair repair = RepairSpec(txns, schedule, spec);
    EXPECT_TRUE(IsRelativelySerializable(txns, schedule, repair.repaired))
        << "round " << round;
    EXPECT_TRUE(repair.repaired.AtLeastAsPermissiveAs(spec));
    EXPECT_EQ(repair.already_serializable, repair.added.empty());
    repaired_cases += repair.added.empty() ? 0 : 1;
    // Consistency of the diff: exactly the added breakpoints are new.
    EXPECT_EQ(repair.repaired.TotalBreakpoints(),
              spec.TotalBreakpoints() + repair.added.size());
  }
  EXPECT_GT(repaired_cases, 15);
}

TEST(Repair, SuggestionsRenderReadably) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w2[y] r1[y]");
  const SpecRepair repair =
      RepairSpec(*txns, *schedule, AbsoluteSpec(*txns));
  const std::string text = SuggestionsToString(*txns, repair);
  EXPECT_NE(text.find("should expose a breakpoint after"),
            std::string::npos);
  EXPECT_NE(text.find("concession"), std::string::npos);
}

TEST(Repair, Figure3ScheduleGetsAWorkingSuggestion) {
  // Figure 3's S2 is relatively serializable already; tighten the spec to
  // absolute first, making it rejectable, then repair.
  const PaperExample fig = Figure3();
  const AtomicitySpec absolute = AbsoluteSpec(fig.txns);
  const Schedule& s2 = fig.schedule("S2");
  if (!IsRelativelySerializable(fig.txns, s2, absolute)) {
    const SpecRepair repair = RepairSpec(fig.txns, s2, absolute);
    EXPECT_FALSE(repair.added.empty());
    EXPECT_TRUE(IsRelativelySerializable(fig.txns, s2, repair.repaired));
  } else {
    // Under absolute atomicity S2 is conflict serializable: fine too.
    SUCCEED();
  }
}

}  // namespace
}  // namespace relser
