// Differential soundness sweep for the sharded admission subsystem
// (src/shard/): randomized multi-shard workloads driven by one client
// thread per transaction, at shard counts {1, 2, 4, 8}, with random
// specs, both router strategies, client aborts, and fault-plan core
// pauses. The gate is the subsystem's whole claim: every committed
// merged history must replay relatively serializably on ONE full
// OnlineRsrChecker over the original (unprojected) transactions and
// spec — per-shard acyclicity plus coordinator acyclicity must imply
// global acyclicity, no matter how the cores interleave.
//
// RELSER_SHARD_DIFF_ROUNDS overrides the round count (default 504, a
// multiple of the four shard counts); CI's TSan job runs fewer.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "exec/backoff.h"
#include "exec/faultplan.h"
#include "obs/trace.h"
#include "shard/router.h"
#include "shard/sharded_admitter.h"
#include "util/rng.h"
#include "workload/shard_gen.h"
#include "workload/spec_gen.h"

namespace relser {
namespace {

std::size_t RoundsFromEnv() {
  if (const char* env = std::getenv("RELSER_SHARD_DIFF_ROUNDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 504;
}

TEST(ShardedDifferential, CommittedHistoriesReplayOnTheFullChecker) {
  const std::size_t rounds = RoundsFromEnv();
  constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
  const Rng base(0x5AD1FF);
  std::size_t committed_txns = 0;
  std::size_t aborted_txns = 0;
  std::uint64_t coordinator_rejects = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng = base.Split(round);
    const std::size_t shard_count = kShardCounts[round % 4];
    ShardedWorkloadParams wp;
    wp.txn_count = 4 + rng.UniformIndex(8);
    wp.min_ops_per_txn = 1;
    wp.max_ops_per_txn = 5;
    wp.shard_count = shard_count;
    wp.objects_per_shard = 2 + rng.UniformIndex(3);  // dense: real conflicts
    wp.cross_shard_ratio = rng.UniformDouble() * 0.6;
    wp.zipf_theta = rng.UniformDouble();
    wp.read_ratio = 0.3 + 0.4 * rng.UniformDouble();
    const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
    const AtomicitySpec spec = RandomSpec(txns, rng.UniformDouble(), &rng);
    const ShardRouter router(txns.object_count(), shard_count,
                             rng.Bernoulli(0.5) ? ShardStrategy::kRange
                                                : ShardStrategy::kHash);

    // A quarter of the rounds also run under deterministic core pauses,
    // shaking the cross-core control-channel and kill-race paths.
    FaultPlanParams fp;
    fp.core_pause_prob = 0.3;
    fp.max_core_pause_us = 40;
    const FaultPlan faults(rng.Next(), fp);
    ShardedAdmitterOptions options;
    options.queue_capacity = 16;  // small rings: exercise backpressure
    if (round % 4 == 3) options.faults = &faults;
    ShardedAdmitter admitter(txns, spec, router, options);

    // One client thread per transaction, program order, blocking
    // submissions — the admitter's feeding contract. Some transactions
    // give up voluntarily mid-stream (client abort).
    const double abort_prob = rng.UniformDouble() * 0.2;
    std::vector<std::uint64_t> seeds(txns.txn_count());
    for (auto& seed : seeds) seed = rng.Next();
    std::vector<std::thread> clients;
    clients.reserve(txns.txn_count());
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      clients.emplace_back([&, t] {
        Rng local(seeds[t]);
        Backoff backoff(seeds[t] ^ 0xB0FF);
        for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
          if (i > 0 && local.Bernoulli(abort_prob)) {
            admitter.AbortTxn(t);
            return;
          }
          if (!admitter.SubmitWithBackoff(txns.txn(t).op(i), backoff).ok()) {
            return;
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    admitter.Stop();

    // The gate: the merged committed history, in global admission
    // order, replays clean through a full single checker over the
    // ORIGINAL transactions and spec.
    OnlineRsrChecker replay(txns, spec);
    const std::vector<Operation> log = admitter.CommittedLog();
    std::vector<std::uint32_t> fed(txns.txn_count(), 0);
    for (std::size_t pos = 0; pos < log.size(); ++pos) {
      ASSERT_TRUE(replay.TryAppend(log[pos]).ok())
          << "round " << round << " (" << shard_count << " shards): "
          << "committed history not relatively serializable at position "
          << pos;
      ASSERT_EQ(log[pos].index, fed[log[pos].txn]++)
          << "round " << round << ": committed log out of program order";
    }
    // Committed transactions appear in full; everything else not at all.
    for (TxnId t = 0; t < txns.txn_count(); ++t) {
      if (admitter.TxnCommitted(t)) {
        ASSERT_EQ(fed[t], txns.txn(t).size()) << "round " << round;
        ++committed_txns;
      } else {
        ASSERT_EQ(fed[t], 0u) << "round " << round;
        if (admitter.TxnVerdict(t).outcome == AdmitOutcome::kAborted) {
          ++aborted_txns;
        }
      }
    }
    coordinator_rejects += admitter.coordinator().rejects();
  }
  // The sweep must exercise the interesting regimes to mean anything.
  EXPECT_GT(committed_txns, rounds) << "commits should dominate";
  EXPECT_GT(aborted_txns, 0u);
  EXPECT_GT(coordinator_rejects, 0u)
      << "the sweep never hit a cross-shard transaction-level cycle";
}

}  // namespace
}  // namespace relser
