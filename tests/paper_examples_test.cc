// Validates every claim the paper makes about its worked examples
// (Figures 1-4 and the Section 2/3 schedules). These tests are the
// ground-truth anchor for the whole library: if any of them fails, the
// theory implementation deviates from the paper.
#include <gtest/gtest.h>

#include "core/brute.h"
#include "core/checkers.h"
#include "core/classify.h"
#include "core/paper_examples.h"
#include "core/rsg.h"
#include "core/rsr.h"
#include "model/conflict.h"
#include "model/text.h"

namespace relser {
namespace {

TEST(Figure1, TransactionsRoundTrip) {
  const PaperExample fig = Figure1();
  EXPECT_EQ(ToString(fig.txns, fig.txns.txn(0)), "r1[x]w1[x]w1[z]r1[y]");
  EXPECT_EQ(ToString(fig.txns, fig.txns.txn(1)), "r2[y]w2[y]r2[x]");
  EXPECT_EQ(ToString(fig.txns, fig.txns.txn(2)), "w3[x]w3[y]w3[z]");
}

TEST(Figure1, SpecMatchesPaper) {
  const PaperExample fig = Figure1();
  // Atomicity(T1,T2) = < r1[x]w1[x], w1[z]r1[y] >.
  EXPECT_EQ(fig.spec.UnitCount(0, 1), 2u);
  EXPECT_EQ(fig.spec.UnitBounds(0, 1, 0), (UnitRange{0, 1}));
  EXPECT_EQ(fig.spec.UnitBounds(0, 1, 1), (UnitRange{2, 3}));
  // Atomicity(T1,T3) = < r1[x]w1[x], w1[z], r1[y] >.
  EXPECT_EQ(fig.spec.UnitCount(0, 2), 3u);
  // Section 3 examples: PushForward(r1[x], T2) = w1[x] and
  // PullBackward(r1[y], T2) = w1[z].
  EXPECT_EQ(fig.spec.PushForward(0, 1, 0), 1u);
  EXPECT_EQ(fig.spec.PullBackward(0, 1, 3), 2u);
}

TEST(Figure1, SraIsRelativelyAtomicButNotSerial) {
  const PaperExample fig = Figure1();
  const Schedule& sra = fig.schedule("Sra");
  EXPECT_FALSE(sra.IsSerial());
  EXPECT_TRUE(IsRelativelyAtomic(fig.txns, sra, fig.spec));
  // Relatively atomic schedules are relatively serial (Figure 5).
  EXPECT_TRUE(IsRelativelySerial(fig.txns, sra, fig.spec));
  EXPECT_TRUE(IsRelativelySerializable(fig.txns, sra, fig.spec));
}

TEST(Figure1, SrsIsRelativelySerialButNotRelativelyAtomic) {
  const PaperExample fig = Figure1();
  const Schedule& srs = fig.schedule("Srs");
  EXPECT_FALSE(IsRelativelyAtomic(fig.txns, srs, fig.spec));
  EXPECT_TRUE(IsRelativelySerial(fig.txns, srs, fig.spec));
  EXPECT_TRUE(IsRelativelySerializable(fig.txns, srs, fig.spec));
}

TEST(Figure1, SrsInterleavingsMatchPaperNarrative) {
  // "In Srs operation r2[y] is interleaved with AtomicUnit(1, T1, T2) and
  //  r2[y] does not depend on r1[x] and w1[x] does not depend on r2[y]."
  const PaperExample fig = Figure1();
  const Schedule& srs = fig.schedule("Srs");
  const DependsOnRelation depends(fig.txns, srs);
  const Operation r2y = fig.txns.txn(1).op(0);
  const Operation r1x = fig.txns.txn(0).op(0);
  const Operation w1x = fig.txns.txn(0).op(1);
  EXPECT_FALSE(depends.DependsOn(r2y, r1x));
  EXPECT_FALSE(depends.DependsOn(w1x, r2y));
}

TEST(Figure1, S2IsRelativelySerializableButNotRelativelySerial) {
  const PaperExample fig = Figure1();
  const Schedule& s2 = fig.schedule("S2");
  EXPECT_FALSE(IsRelativelySerial(fig.txns, s2, fig.spec));
  EXPECT_TRUE(IsRelativelySerializable(fig.txns, s2, fig.spec));
  // "S2 is conflict equivalent to the relatively serial schedule Srs."
  EXPECT_TRUE(ConflictEquivalent(fig.txns, s2, fig.schedule("Srs")));
}

TEST(Figure1, S2ViolationMatchesPaperNarrative) {
  // "w1[x] is interleaved with AtomicUnit(2, T2, T1) and r2[x] depends on
  //  w1[x]" — the checker must report an offending interleaving of T1
  // inside T2's second unit.
  const PaperExample fig = Figure1();
  const Schedule& s2 = fig.schedule("S2");
  const DependsOnRelation depends(fig.txns, s2);
  const auto violation =
      FindRelativeSerialityViolation(fig.txns, s2, fig.spec, depends);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->op.txn, 0u);         // an operation of T1
  EXPECT_EQ(violation->violated_txn, 1u);   // inside a unit of T2
  EXPECT_EQ(violation->unit, 1u);           // the second unit (0-based)
  const Operation w1x = fig.txns.txn(0).op(1);
  const Operation r2x = fig.txns.txn(1).op(2);
  EXPECT_TRUE(depends.DependsOn(r2x, w1x));
}

TEST(Figure1, WitnessExtractionYieldsRelativelySerialEquivalent) {
  const PaperExample fig = Figure1();
  const Schedule& s2 = fig.schedule("S2");
  const RsrAnalysis analysis =
      AnalyzeRelativeSerializability(fig.txns, s2, fig.spec);
  EXPECT_TRUE(analysis.relatively_serializable);
  ASSERT_TRUE(analysis.witness.has_value());
  EXPECT_TRUE(IsRelativelySerial(fig.txns, *analysis.witness, fig.spec));
  EXPECT_TRUE(ConflictEquivalent(fig.txns, s2, *analysis.witness));
}

TEST(Figure2, S1IsNotRelativelySerial) {
  const PaperExample fig = Figure2();
  const Schedule& s1 = fig.schedule("S1");
  EXPECT_FALSE(IsRelativelyAtomic(fig.txns, s1, fig.spec));
  EXPECT_FALSE(IsRelativelySerial(fig.txns, s1, fig.spec));
}

TEST(Figure2, DependencyChainFromPaper) {
  // "w2[y] does not conflict with either w1[x] or r1[z], but r1[z] is
  //  affected by w2[y]" — the transitive closure must contain the chain
  //  w2[y] -> r3[y] -> w3[z] -> r1[z] while no direct conflict exists.
  const PaperExample fig = Figure2();
  const Schedule& s1 = fig.schedule("S1");
  const DependsOnRelation depends(fig.txns, s1);
  const Operation w2y = fig.txns.txn(1).op(0);
  const Operation w1x = fig.txns.txn(0).op(0);
  const Operation r1z = fig.txns.txn(0).op(1);
  EXPECT_FALSE(Conflicts(w2y, w1x));
  EXPECT_FALSE(Conflicts(w2y, r1z));
  EXPECT_TRUE(depends.DependsOn(r1z, w2y));
  EXPECT_FALSE(depends.DirectlyDependsOn(r1z, w2y));
}

TEST(Figure2, DirectConflictsOnlyWouldWronglyAccept) {
  // Re-run the Definition 2 check with depends-on replaced by *direct*
  // conflicts only: S1 would then pass, demonstrating why the paper needs
  // the transitive closure. We emulate this by checking that no unit
  // operation of T1's violated unit directly conflicts with w2[y].
  const PaperExample fig = Figure2();
  const Operation w2y = fig.txns.txn(1).op(0);
  for (const Operation& op : fig.txns.txn(0).ops()) {
    EXPECT_FALSE(Conflicts(w2y, op));
  }
}

TEST(Figure2, S1IsNeverthelessRelativelySerializable) {
  // S1 is conflict equivalent to the serial schedule T2 T3 T1, so it is
  // relatively serializable (and conflict serializable) even though it is
  // not relatively serial.
  const PaperExample fig = Figure2();
  const Schedule& s1 = fig.schedule("S1");
  EXPECT_TRUE(IsRelativelySerializable(fig.txns, s1, fig.spec));
  EXPECT_TRUE(IsConflictSerializable(fig.txns, s1));
}

// The exact arc set of the worked RSG in Figure 3, derived from
// Definition 3 (kinds verified arc by arc).
TEST(Figure3, RsgArcSetMatchesDefinition) {
  const PaperExample fig = Figure3();
  const Schedule& s2 = fig.schedule("S2");
  const RelativeSerializationGraph rsg(fig.txns, s2, fig.spec);
  const OpIndexer& ix = rsg.indexer();

  const NodeId w1x = ix.GlobalId(0, 0);
  const NodeId r1z = ix.GlobalId(0, 1);
  const NodeId r2x = ix.GlobalId(1, 0);
  const NodeId w2y = ix.GlobalId(1, 1);
  const NodeId r3z = ix.GlobalId(2, 0);
  const NodeId r3y = ix.GlobalId(2, 1);

  // I-arcs.
  EXPECT_EQ(rsg.KindsOf(w1x, r1z), kInternalArc);
  EXPECT_EQ(rsg.KindsOf(r2x, w2y), kInternalArc);
  EXPECT_EQ(rsg.KindsOf(r3z, r3y), kInternalArc);
  // D-arcs with their overlapping F/B contributions.
  EXPECT_EQ(rsg.KindsOf(w1x, r2x), kDependencyArc | kPullBackwardArc);
  EXPECT_EQ(rsg.KindsOf(w1x, w2y), kDependencyArc | kPullBackwardArc);
  EXPECT_EQ(rsg.KindsOf(w1x, r3y),
            kDependencyArc | kPushForwardArc | kPullBackwardArc);
  EXPECT_EQ(rsg.KindsOf(r2x, r3y), kDependencyArc | kPushForwardArc);
  EXPECT_EQ(rsg.KindsOf(w2y, r3y), kDependencyArc | kPushForwardArc);
  // r3[z] and r1[z] are both *reads* of z: no conflict, hence no D-arc
  // between T3 and T1 despite both touching z.
  EXPECT_EQ(rsg.KindsOf(r3z, r1z), 0);
  // Pure F-arcs: "RSG(S2) contains the F-arc from r1[z] to r2[x]".
  EXPECT_EQ(rsg.KindsOf(r1z, r2x), kPushForwardArc);
  EXPECT_EQ(rsg.KindsOf(r1z, w2y), kPushForwardArc);
  // Pure B-arcs: "RSG(S2) contains the B-arc from w2[y] to r3[z]".
  EXPECT_EQ(rsg.KindsOf(w2y, r3z), kPullBackwardArc);
  EXPECT_EQ(rsg.KindsOf(r2x, r3z), kPullBackwardArc);
  // Exactly these arcs and no others: 3 I + 5 D + 2 pure F + 2 pure B.
  EXPECT_EQ(rsg.arc_count(), 12u);
}

TEST(Figure3, S2IsRelativelySerializableButNotRelativelySerial) {
  // The RSG above is acyclic (S2 is conflict equivalent to the serial
  // schedule T1 T2 T3), but S2 itself is not relatively serial: r2[x]
  // depends on w1[x] yet sits inside T1's single unit relative to T2.
  const PaperExample fig = Figure3();
  const Schedule& s2 = fig.schedule("S2");
  EXPECT_FALSE(IsRelativelySerial(fig.txns, s2, fig.spec));
  EXPECT_TRUE(IsRelativelySerializable(fig.txns, s2, fig.spec));
  auto serial = Schedule::Serial(fig.txns, {0, 1, 2});
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(ConflictEquivalent(fig.txns, s2, *serial));
}

TEST(Figure4, SIsRelativelySerialButNotRelativelyConsistent) {
  const PaperExample fig = Figure4();
  const Schedule& s = fig.schedule("S");
  EXPECT_TRUE(IsRelativelySerial(fig.txns, s, fig.spec));
  EXPECT_TRUE(IsRelativelySerializable(fig.txns, s, fig.spec));
  const BruteForceResult rc =
      IsRelativelyConsistent(fig.txns, s, fig.spec);
  ASSERT_TRUE(rc.decided.has_value());
  EXPECT_FALSE(*rc.decided);
}

TEST(Figure4, ClassificationShowsStrictContainment) {
  const PaperExample fig = Figure4();
  ClassifyOptions options;
  options.with_relative_consistency = true;
  const ScheduleClassification c =
      Classify(fig.txns, fig.schedule("S"), fig.spec, options);
  CheckLatticeInvariants(c);
  EXPECT_FALSE(c.serial);
  EXPECT_FALSE(c.relatively_atomic);
  EXPECT_TRUE(c.relatively_serial);
  EXPECT_TRUE(c.relatively_serializable);
  ASSERT_TRUE(c.relatively_consistent.has_value());
  EXPECT_FALSE(*c.relatively_consistent);
}

TEST(AllExamples, LatticeInvariantsHoldForEveryNamedSchedule) {
  for (const PaperExample& fig : AllPaperExamples()) {
    for (const auto& [name, schedule] : fig.schedules) {
      ClassifyOptions options;
      options.with_relative_consistency = true;
      options.brute_force_budget = 1u << 20;
      const ScheduleClassification c =
          Classify(fig.txns, schedule, fig.spec, options);
      SCOPED_TRACE(fig.name + "/" + name);
      CheckLatticeInvariants(c);
    }
  }
}

}  // namespace
}  // namespace relser
