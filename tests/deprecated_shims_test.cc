// Compile-and-behavior check for the one-release deprecation shims left
// behind by the AdmitOutcome migration (core/admit.h): the legacy
// scheduler Decision vocabulary and the bool-returning entry points.
// This TU is compiled with -Wno-deprecated-declarations (see
// tests/CMakeLists.txt) precisely so it can keep calling them; every
// other TU hits -Werror if it regresses onto the old surface.
#include <gtest/gtest.h>

#include "core/online.h"
#include "model/text.h"
#include "sched/admitter.h"
#include "sched/scheduler.h"
#include "spec/builders.h"

namespace relser {
namespace {

TEST(DeprecatedShims, DecisionEnumStillMapsOntoAdmitOutcome) {
  EXPECT_EQ(ToAdmitOutcome(Decision::kGrant), AdmitOutcome::kAccept);
  EXPECT_EQ(ToAdmitOutcome(Decision::kBlock), AdmitOutcome::kRetry);
  EXPECT_EQ(ToAdmitOutcome(Decision::kAbort), AdmitOutcome::kAborted);
  EXPECT_STREQ(DecisionName(Decision::kGrant), "grant");
  EXPECT_STREQ(DecisionName(Decision::kBlock), "block");
  EXPECT_STREQ(DecisionName(Decision::kAbort), "abort");
}

TEST(DeprecatedShims, CheckerBoolEntryPointsAgreeWithAdmitResult) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = AbsoluteSpec(*txns);
  OnlineRsrChecker checker(*txns, spec);
  EXPECT_TRUE(checker.TryAppendOk(txns->txn(0).op(0)));
  EXPECT_TRUE(checker.TryAppendOk(txns->txn(1).op(0)));
  EXPECT_TRUE(checker.TryAppendOk(txns->txn(1).op(1)));
  // The sandwich rejection comes back as plain false.
  EXPECT_FALSE(checker.TryAppendOk(txns->txn(0).op(1)));

  OnlineRsrChecker isolated(*txns, spec);
  // Fast-path shim: first touch of a fresh object by a fresh txn.
  EXPECT_TRUE(isolated.TryAppendIsolatedOk(txns->txn(0).op(0)));
}

TEST(DeprecatedShims, AdmitterBoolSurfaceStillWorks) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[y]\nT2 = r2[x] w2[y]\n");
  ASSERT_TRUE(txns.ok());
  const AtomicitySpec spec = AbsoluteSpec(*txns);
  ConcurrentAdmitter admitter(*txns, spec);
  EXPECT_TRUE(admitter.SubmitAndWaitOk(txns->txn(0).op(0)));
  EXPECT_TRUE(admitter.SubmitAndWaitOk(txns->txn(1).op(0)));
  EXPECT_TRUE(admitter.SubmitAndWaitOk(txns->txn(1).op(1)));
  EXPECT_FALSE(admitter.SubmitAndWaitOk(txns->txn(0).op(1)));
  // Decision words are historical: w1[x] was accepted when decided,
  // even though the abort later withdrew it from the checker.
  EXPECT_EQ(admitter.OpVerdict(txns->txn(0).op(0)),
            ConcurrentAdmitter::Verdict::kAccepted);
  EXPECT_EQ(admitter.OpVerdict(txns->txn(0).op(1)),
            ConcurrentAdmitter::Verdict::kRejected);
  EXPECT_FALSE(admitter.TxnVerdictOk(0));
  EXPECT_TRUE(admitter.TxnVerdictOk(1));
  admitter.Stop();
}

}  // namespace
}  // namespace relser
