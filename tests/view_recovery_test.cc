// Tests for the classical-theory baselines: view equivalence / view
// serializability and the recovery classes RC / ACA / ST.
#include <gtest/gtest.h>

#include "model/conflict.h"
#include "model/recovery.h"
#include "model/text.h"
#include "model/view.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace relser {
namespace {

// -------------------------------------------------------------- view

TEST(View, ReadsFromInitialAndFromWriters) {
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] w1[x] r2[x]");
  const ViewProfile profile = ComputeViewProfile(*txns, *schedule);
  const OpIndexer ix(*txns);
  EXPECT_EQ(profile.reads_from[ix.GlobalId(0, 0)], kInitialTxn);
  EXPECT_EQ(profile.reads_from[ix.GlobalId(1, 0)], 0u);  // reads T1's write
  EXPECT_EQ(profile.final_writer[0], 0u);
}

TEST(View, ReadOwnWrite) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[x]\nT2 = w2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] w2[x] r1[x]");
  const ViewProfile profile = ComputeViewProfile(*txns, *schedule);
  const OpIndexer ix(*txns);
  // The latest write before r1[x] is w2[x] — under the standard model the
  // read observes the most recent write regardless of writer.
  EXPECT_EQ(profile.reads_from[ix.GlobalId(0, 1)], 1u);
  EXPECT_EQ(profile.final_writer[0], 1u);
}

TEST(View, ViewEquivalenceDistinguishesReadsFrom) {
  auto txns = ParseTransactionSet("T1 = w1[x]\nT2 = r2[x]\n");
  auto a = ParseSchedule(*txns, "w1[x] r2[x]");
  auto b = ParseSchedule(*txns, "r2[x] w1[x]");
  EXPECT_FALSE(ViewEquivalent(*txns, *a, *b));
  EXPECT_TRUE(ViewEquivalent(*txns, *a, *a));
}

TEST(View, ConflictEquivalenceImpliesViewEquivalence) {
  Rng rng(1);
  for (int round = 0; round < 40; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 4;
    wp.object_count = 3;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule a = RandomSchedule(txns, &rng);
    const Schedule b = RandomSchedule(txns, &rng);
    if (ConflictEquivalent(txns, a, b)) {
      EXPECT_TRUE(ViewEquivalent(txns, a, b)) << "round " << round;
    }
  }
}

TEST(View, ClassicBlindWriteExampleIsViewButNotConflictSerializable) {
  // The textbook separation witness: blind writes make S view equivalent
  // to the serial T1 T2 T3 although SG(S) has a T1/T2 cycle.
  auto txns = ParseTransactionSet(
      "T1 = w1[x] w1[y]\nT2 = w2[x] w2[y]\nT3 = w3[x] w3[y]\n");
  auto schedule =
      ParseSchedule(*txns, "w1[x] w2[x] w2[y] w1[y] w3[x] w3[y]");
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(IsConflictSerializable(*txns, *schedule));
  EXPECT_TRUE(IsViewSerializable(*txns, *schedule));
  const auto order = ViewSerializationOrder(*txns, *schedule);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<TxnId>{0, 1, 2}));
}

TEST(View, ConflictSerializableImpliesViewSerializable) {
  Rng rng(2);
  for (int round = 0; round < 50; ++round) {
    WorkloadParams wp;
    wp.txn_count = 3;
    wp.max_ops_per_txn = 3;
    wp.object_count = 2;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    if (IsConflictSerializable(txns, schedule)) {
      EXPECT_TRUE(IsViewSerializable(txns, schedule)) << "round " << round;
    }
  }
}

TEST(View, NonSerializableScheduleRejected) {
  // Lost update with reads: no serial order matches the reads-from.
  auto txns = ParseTransactionSet("T1 = r1[x] w1[x]\nT2 = r2[x] w2[x]\n");
  auto schedule = ParseSchedule(*txns, "r1[x] r2[x] w1[x] w2[x]");
  EXPECT_FALSE(IsViewSerializable(*txns, *schedule));
}

// ---------------------------------------------------------- recovery

TEST(Recovery, SerialSchedulesAreStrict) {
  Rng rng(3);
  WorkloadParams wp;
  wp.txn_count = 4;
  const TransactionSet txns = GenerateTransactions(wp, &rng);
  const Schedule serial = RandomSerialSchedule(txns, &rng);
  const RecoveryClassification c = ClassifyRecovery(txns, serial);
  EXPECT_TRUE(c.strict);
  EXPECT_TRUE(c.avoids_cascading);
  EXPECT_TRUE(c.recoverable);
  EXPECT_EQ(c.ToFlags(), "ST ACA RC");
}

TEST(Recovery, DirtyReadBeforeWriterCommitBreaksAca) {
  // T2 reads T1's write before T1's last op: not ACA; T2 commits after
  // T1, so still recoverable.
  auto txns = ParseTransactionSet("T1 = w1[x] w1[y]\nT2 = r2[x] r2[z]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w1[y] r2[z]");
  const RecoveryClassification c = ClassifyRecovery(*txns, *schedule);
  EXPECT_TRUE(c.recoverable);
  EXPECT_FALSE(c.avoids_cascading);
  EXPECT_FALSE(c.strict);
  EXPECT_EQ(c.ToFlags(), "RC");
  CheckRecoveryInvariants(c);
}

TEST(Recovery, ReaderCommittingFirstBreaksRecoverability) {
  // T2 reads T1's dirty write and commits before T1 does.
  auto txns = ParseTransactionSet("T1 = w1[x] w1[y]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r2[x] w1[y]");
  const RecoveryClassification c = ClassifyRecovery(*txns, *schedule);
  EXPECT_FALSE(c.recoverable);
  EXPECT_FALSE(c.avoids_cascading);
  EXPECT_EQ(c.ToFlags(), "-");
}

TEST(Recovery, DirtyOverwriteBreaksStrictnessOnly) {
  // T2 overwrites T1's uncommitted write but never reads it: ACA holds,
  // strictness does not.
  auto txns = ParseTransactionSet("T1 = w1[x] w1[y]\nT2 = w2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] w2[x] w1[y]");
  const RecoveryClassification c = ClassifyRecovery(*txns, *schedule);
  EXPECT_TRUE(c.recoverable);
  EXPECT_TRUE(c.avoids_cascading);
  EXPECT_FALSE(c.strict);
  EXPECT_EQ(c.ToFlags(), "ACA RC");
}

TEST(Recovery, ReadAfterCommitIsClean) {
  auto txns = ParseTransactionSet("T1 = w1[x] w1[y]\nT2 = r2[x]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] w1[y] r2[x]");
  const RecoveryClassification c = ClassifyRecovery(*txns, *schedule);
  EXPECT_TRUE(c.strict);
}

TEST(Recovery, InvariantsHoldOnRandomSchedules) {
  Rng rng(4);
  for (int round = 0; round < 100; ++round) {
    WorkloadParams wp;
    wp.txn_count = 2 + rng.UniformIndex(4);
    wp.object_count = 2 + rng.UniformIndex(3);
    wp.read_ratio = 0.5;
    const TransactionSet txns = GenerateTransactions(wp, &rng);
    const Schedule schedule = RandomSchedule(txns, &rng);
    CheckRecoveryInvariants(ClassifyRecovery(txns, schedule));
  }
}

TEST(Recovery, OwnWriteDoesNotCountAsDirty) {
  auto txns = ParseTransactionSet("T1 = w1[x] r1[x] w1[y]\nT2 = w2[z]\n");
  auto schedule = ParseSchedule(*txns, "w1[x] r1[x] w2[z] w1[y]");
  const RecoveryClassification c = ClassifyRecovery(*txns, *schedule);
  EXPECT_TRUE(c.strict);
}

}  // namespace
}  // namespace relser
