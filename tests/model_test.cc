// Unit tests for the transaction/schedule model: operations, conflicts,
// TransactionSet, OpIndexer, Schedule construction and validation.
#include <gtest/gtest.h>

#include "model/op_indexer.h"
#include "model/operation.h"
#include "model/schedule.h"
#include "model/text.h"
#include "model/transaction.h"

namespace relser {
namespace {

TransactionSet TwoTxns() {
  TransactionSet txns;
  const ObjectId x = txns.InternObject("x");
  const ObjectId y = txns.InternObject("y");
  Transaction* t1 = txns.AddTransaction();
  t1->Read(x);
  t1->Write(x);
  Transaction* t2 = txns.AddTransaction();
  t2->Read(y);
  t2->Write(x);
  t2->Write(y);
  return txns;
}

// ------------------------------------------------------------- Operation

TEST(Operation, ConflictRequiresSharedObjectAndAWrite) {
  const Operation r1x{0, 0, OpType::kRead, 0};
  const Operation w2x{1, 0, OpType::kWrite, 0};
  const Operation r2x{1, 0, OpType::kRead, 0};
  const Operation w2y{1, 1, OpType::kWrite, 1};
  EXPECT_TRUE(Conflicts(r1x, w2x));   // read-write, same object
  EXPECT_TRUE(Conflicts(w2x, r1x));   // symmetric
  EXPECT_FALSE(Conflicts(r1x, r2x));  // read-read never conflicts
  EXPECT_FALSE(Conflicts(r1x, w2y));  // different objects
}

TEST(Operation, SameTransactionNeverConflicts) {
  const Operation w0{0, 0, OpType::kWrite, 5};
  const Operation w1{0, 1, OpType::kWrite, 5};
  EXPECT_FALSE(Conflicts(w0, w1));
}

TEST(Operation, PrintingUsesOneBasedTxnIds) {
  const Operation op{2, 0, OpType::kRead, 0};
  EXPECT_EQ(OperationToString(op, "acct"), "r3[acct]");
  const Operation wr{0, 1, OpType::kWrite, 0};
  EXPECT_EQ(OperationToString(wr, "x"), "w1[x]");
}

TEST(Operation, OpTypeNames) {
  EXPECT_STREQ(OpTypeName(OpType::kRead), "r");
  EXPECT_STREQ(OpTypeName(OpType::kWrite), "w");
}

// -------------------------------------------------------- TransactionSet

TEST(TransactionSet, InternObjectIsIdempotent) {
  TransactionSet txns;
  const ObjectId x1 = txns.InternObject("x");
  const ObjectId y = txns.InternObject("y");
  const ObjectId x2 = txns.InternObject("x");
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_EQ(txns.object_count(), 2u);
  EXPECT_EQ(txns.ObjectName(x1), "x");
}

TEST(TransactionSet, AddObjectsCreatesAnonymousObjects) {
  TransactionSet txns;
  const ObjectId first = txns.AddObjects(3);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(txns.object_count(), 3u);
}

TEST(TransactionSet, TransactionsGetSequentialIdsAndIndexedOps) {
  const TransactionSet txns = TwoTxns();
  EXPECT_EQ(txns.txn_count(), 2u);
  EXPECT_EQ(txns.txn(0).id(), 0u);
  EXPECT_EQ(txns.txn(1).id(), 1u);
  EXPECT_EQ(txns.txn(0).op(1).index, 1u);
  EXPECT_EQ(txns.txn(1).op(2).type, OpType::kWrite);
  EXPECT_EQ(txns.total_ops(), 5u);
}

TEST(TransactionSet, PointersSurviveLaterAdds) {
  TransactionSet txns;
  const ObjectId x = txns.InternObject("x");
  Transaction* first = txns.AddTransaction();
  for (int i = 0; i < 100; ++i) {
    txns.AddTransaction()->Write(x);
  }
  first->Read(x);  // must not be dangling (deque storage)
  EXPECT_EQ(txns.txn(0).size(), 1u);
}

TEST(TransactionSet, GlobalOpIdRoundTrips) {
  const TransactionSet txns = TwoTxns();
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    for (std::uint32_t j = 0; j < txns.txn(t).size(); ++j) {
      const std::size_t gid = txns.GlobalOpId(t, j);
      EXPECT_EQ(txns.OpByGlobalId(gid), txns.txn(t).op(j));
    }
  }
}

TEST(TransactionSet, ValidateAcceptsWellFormedSet) {
  EXPECT_TRUE(TwoTxns().Validate().ok());
}

TEST(TransactionSet, ValidateRejectsEmptyTransaction) {
  TransactionSet txns;
  txns.AddTransaction();
  const Status status = txns.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- OpIndexer

TEST(OpIndexer, MatchesTransactionSetNumbering) {
  const TransactionSet txns = TwoTxns();
  const OpIndexer indexer(txns);
  EXPECT_EQ(indexer.total_ops(), 5u);
  EXPECT_EQ(indexer.txn_count(), 2u);
  EXPECT_EQ(indexer.GlobalId(0, 0), 0u);
  EXPECT_EQ(indexer.GlobalId(1, 0), 2u);
  EXPECT_EQ(indexer.TxnBegin(1), 2u);
  EXPECT_EQ(indexer.TxnEnd(1), 5u);
  for (TxnId t = 0; t < txns.txn_count(); ++t) {
    for (std::uint32_t j = 0; j < txns.txn(t).size(); ++j) {
      EXPECT_EQ(indexer.GlobalId(t, j), txns.GlobalOpId(t, j));
    }
  }
}

// -------------------------------------------------------------- Schedule

TEST(Schedule, OverAcceptsValidInterleaving) {
  const TransactionSet txns = TwoTxns();
  std::vector<Operation> ops = {txns.txn(1).op(0), txns.txn(0).op(0),
                                txns.txn(1).op(1), txns.txn(0).op(1),
                                txns.txn(1).op(2)};
  auto schedule = Schedule::Over(txns, ops);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->size(), 5u);
  EXPECT_EQ(schedule->PositionOf(0, 0), 1u);
  EXPECT_EQ(schedule->PositionOf(1, 2), 4u);
  EXPECT_TRUE(schedule->Precedes(txns.txn(1).op(0), txns.txn(0).op(0)));
}

TEST(Schedule, OverRejectsWrongLength) {
  const TransactionSet txns = TwoTxns();
  auto schedule = Schedule::Over(txns, {txns.txn(0).op(0)});
  ASSERT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument);
}

TEST(Schedule, OverRejectsProgramOrderViolation) {
  const TransactionSet txns = TwoTxns();
  std::vector<Operation> ops = {txns.txn(0).op(1), txns.txn(0).op(0),
                                txns.txn(1).op(0), txns.txn(1).op(1),
                                txns.txn(1).op(2)};
  EXPECT_FALSE(Schedule::Over(txns, ops).ok());
}

TEST(Schedule, OverRejectsDuplicatedOperation) {
  const TransactionSet txns = TwoTxns();
  std::vector<Operation> ops = {txns.txn(0).op(0), txns.txn(0).op(0),
                                txns.txn(1).op(0), txns.txn(1).op(1),
                                txns.txn(1).op(2)};
  EXPECT_FALSE(Schedule::Over(txns, ops).ok());
}

TEST(Schedule, OverRejectsForeignOperation) {
  const TransactionSet txns = TwoTxns();
  std::vector<Operation> ops = {Operation{7, 0, OpType::kRead, 0},
                                txns.txn(0).op(0), txns.txn(0).op(1),
                                txns.txn(1).op(0), txns.txn(1).op(1)};
  EXPECT_FALSE(Schedule::Over(txns, ops).ok());
}

TEST(Schedule, OverRejectsMislabeledOperation) {
  const TransactionSet txns = TwoTxns();
  // Right (txn,index) but wrong type: does not match the set's op.
  Operation fake = txns.txn(0).op(0);
  fake.type = OpType::kWrite;
  std::vector<Operation> ops = {fake, txns.txn(0).op(1), txns.txn(1).op(0),
                                txns.txn(1).op(1), txns.txn(1).op(2)};
  EXPECT_FALSE(Schedule::Over(txns, ops).ok());
}

TEST(Schedule, SerialBuildsAndReportsSerial) {
  const TransactionSet txns = TwoTxns();
  auto schedule = Schedule::Serial(txns, {1, 0});
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->IsSerial());
  EXPECT_EQ(schedule->op(0).txn, 1u);
  EXPECT_EQ(schedule->TxnsByFirstOp(), (std::vector<TxnId>{1, 0}));
}

TEST(Schedule, SerialRejectsBadPermutation) {
  const TransactionSet txns = TwoTxns();
  EXPECT_FALSE(Schedule::Serial(txns, {0}).ok());
  EXPECT_FALSE(Schedule::Serial(txns, {0, 0}).ok());
  EXPECT_FALSE(Schedule::Serial(txns, {0, 5}).ok());
}

TEST(Schedule, IsSerialDetectsResumedTransaction) {
  const TransactionSet txns = TwoTxns();
  // T1[0] T2[0..2] T1[1]: T1 resumes after T2 ran -> not serial.
  std::vector<Operation> ops = {txns.txn(0).op(0), txns.txn(1).op(0),
                                txns.txn(1).op(1), txns.txn(1).op(2),
                                txns.txn(0).op(1)};
  auto schedule = Schedule::Over(txns, ops);
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(schedule->IsSerial());
}

TEST(Schedule, EmptyScheduleOverEmptySet) {
  TransactionSet txns;
  auto schedule = Schedule::Over(txns, {});
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->empty());
  EXPECT_TRUE(schedule->IsSerial());
}

}  // namespace
}  // namespace relser
