// Tests for FlatMap64, the open-addressing map behind the Digraph edge
// index and the online checker's arc memos.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "util/flat_map.h"
#include "util/rng.h"

namespace relser {
namespace {

TEST(FlatMap64, InsertFindErase) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  auto [value, inserted] = map.Upsert(7);
  EXPECT_TRUE(inserted);
  *value = 42;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  auto [again, second] = map.Upsert(7);
  EXPECT_FALSE(second);
  EXPECT_EQ(*again, 42);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap64, KeyZeroIsOrdinary) {
  FlatMap64<int> map;
  *map.Upsert(0).first = 5;
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 5);
}

TEST(FlatMap64, TombstoneSlotsAreReused) {
  FlatMap64<int> map;
  for (std::uint64_t k = 0; k < 8; ++k) *map.Upsert(k).first = 1;
  for (std::uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(map.Erase(k));
  // Heavy churn on a small table must not grow it unboundedly or lose
  // entries behind tombstones.
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t k = static_cast<std::uint64_t>(round) * 977;
    *map.Upsert(k).first = round;
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), round);
    EXPECT_TRUE(map.Erase(k));
  }
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap64, ReserveAvoidsRehashDuringFill) {
  FlatMap64<std::uint64_t> map;
  map.Reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) *map.Upsert(k * 31).first = k;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.Find(k * 31), nullptr);
    EXPECT_EQ(*map.Find(k * 31), k);
  }
}

TEST(FlatMap64, ForEachVisitsExactlyLiveEntries) {
  FlatMap64<int> map;
  for (std::uint64_t k = 0; k < 20; ++k) *map.Upsert(k).first = 1;
  for (std::uint64_t k = 0; k < 20; k += 2) map.Erase(k);
  std::size_t visited = 0;
  std::uint64_t key_sum = 0;
  map.ForEach([&](std::uint64_t key, int& value) {
    ++visited;
    key_sum += key;
    EXPECT_EQ(value, 1);
  });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(key_sum, 1u + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19);
}

TEST(FlatMap64, RandomizedDifferentialAgainstStdMap) {
  Rng rng(123456);
  FlatMap64<std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.UniformIndex(512);
    const double roll = rng.UniformDouble();
    if (roll < 0.5) {
      const auto value = static_cast<std::uint32_t>(step);
      *map.Upsert(key).first = value;
      reference[key] = value;
    } else if (roll < 0.8) {
      EXPECT_EQ(map.Erase(key), reference.erase(key) > 0);
    } else {
      const auto* found = map.Find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
}

}  // namespace
}  // namespace relser
