// audit: the offline relative-serializability auditor (docs/audit.md).
//
// Ingests a JSONL history (the versioned src/obs trace format or the
// minimal generic {"txn","op","object","rw"} dialect, see
// docs/trace-format.md), reconstructs the schedule, replays it through
// the streaming certifier, and reports ACCEPT or VIOLATION. On
// violation it delta-debugs the history to a minimal witness
// sub-history and exports the witness both as a self-contained
// versioned JSONL trace (itself auditable) and as a Chrome trace_event
// file for Perfetto.
//
// Exit codes (stable, for CI and fuzzing):
//   0  history accepted (relatively serializable w.r.t. the spec)
//   1  history violates the specification
//   2  usage, I/O, parse, or version error
//
//   audit [options] FILE         audit FILE ("-" reads stdin)
//   audit --demo [DIR]           worked example; writes traces under DIR
//   audit --self-audit [opts]    audit a ShardedAdmitter committed log
//
// Options:
//   --format=auto|trace|generic  input dialect (default auto-sniff)
//   --spec=absolute|FILE         override the specification (default:
//                                header-embedded spec, else absolute)
//   --checker=online|soa         scan checker (decisions identical)
//   --no-minimize                stop at the first rejection
//   --witness-out=PREFIX         witness file prefix (default "witness")
//   --no-witness                 do not write witness files
// Self-audit options:
//   --txns=N --shards=N --clients=N --cross=R --density=R --seed=N
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "relser.h"

#include "audit/audit.h"
#include "audit/ingest.h"

namespace relser {
namespace {

constexpr int kExitAccept = 0;
constexpr int kExitViolation = 1;
constexpr int kExitError = 2;

int Usage() {
  std::fprintf(
      stderr,
      "usage: audit [options] FILE   audit a JSONL history (\"-\" = stdin)\n"
      "       audit --demo [DIR]     worked example (writes traces to DIR)\n"
      "       audit --self-audit     audit a ShardedAdmitter committed log\n"
      "options:\n"
      "  --format=auto|trace|generic   input dialect (default: auto)\n"
      "  --spec=absolute|FILE          override the specification\n"
      "  --checker=online|soa          scan checker (default: online)\n"
      "  --no-minimize                 stop at the first rejection\n"
      "  --witness-out=PREFIX          witness file prefix (default: "
      "witness)\n"
      "  --no-witness                  do not write witness files\n"
      "self-audit options:\n"
      "  --txns=N --shards=N --clients=N --cross=R --density=R --seed=N\n"
      "exit codes: 0 accept, 1 violation, 2 usage/parse/IO error\n"
      "docs/audit.md has the full reference; docs/trace-format.md the\n"
      "input schema.\n");
  return kExitError;
}

struct CliOptions {
  std::string file;
  std::string format = "auto";
  std::string spec;  // empty = header spec (else absolute)
  std::string checker = "online";
  std::string witness_out = "witness";
  bool minimize = true;
  bool write_witness = true;
  bool demo = false;
  bool self_audit = false;
  std::string demo_dir = ".";
  // Self-audit knobs.
  std::size_t txns = 256;
  std::size_t shards = 4;
  std::size_t clients = 4;
  double cross = 0.2;
  double density = 0.5;
  std::uint64_t seed = 42;
};

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const auto take = [&](std::string* slot) {
      if (eq != std::string::npos) {
        *slot = value;
        return true;
      }
      if (i + 1 >= argc) return false;
      *slot = argv[++i];
      return true;
    };
    std::string num;
    if (arg == "--demo") {
      out->demo = true;
    } else if (arg == "--self-audit") {
      out->self_audit = true;
    } else if (arg == "--no-minimize") {
      out->minimize = false;
    } else if (arg == "--no-witness") {
      out->write_witness = false;
    } else if (arg == "--format") {
      if (!take(&out->format)) return false;
    } else if (arg == "--spec") {
      if (!take(&out->spec)) return false;
    } else if (arg == "--checker") {
      if (!take(&out->checker)) return false;
    } else if (arg == "--witness-out") {
      if (!take(&out->witness_out)) return false;
    } else if (arg == "--txns") {
      if (!take(&num)) return false;
      out->txns = static_cast<std::size_t>(std::strtoull(num.c_str(), nullptr, 10));
    } else if (arg == "--shards") {
      if (!take(&num)) return false;
      out->shards = static_cast<std::size_t>(std::strtoull(num.c_str(), nullptr, 10));
    } else if (arg == "--clients") {
      if (!take(&num)) return false;
      out->clients = static_cast<std::size_t>(std::strtoull(num.c_str(), nullptr, 10));
    } else if (arg == "--cross") {
      if (!take(&num)) return false;
      out->cross = std::strtod(num.c_str(), nullptr);
    } else if (arg == "--density") {
      if (!take(&num)) return false;
      out->density = std::strtod(num.c_str(), nullptr);
    } else if (arg == "--seed") {
      if (!take(&num)) return false;
      out->seed = std::strtoull(num.c_str(), nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "audit: unknown option %s\n", arg.c_str());
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (out->demo) {
    if (positional.size() > 1) return false;
    if (!positional.empty()) out->demo_dir = positional[0];
    return true;
  }
  if (out->self_audit) return positional.empty();
  if (positional.size() != 1) return false;
  out->file = positional[0];
  return true;
}

// -- Shared reporting -------------------------------------------------

void PrintRejection(const TransactionSet& txns,
                    const std::vector<Operation>& history,
                    const AuditReport& report) {
  std::string line;
  line += "audit: VIOLATION at history index ";
  line += std::to_string(report.first_rejection);
  line += " (";
  line += ToString(txns, history[report.first_rejection]);
  line += "): ";
  line += AdmitOutcomeName(report.rejection.outcome);
  const ArcWitness& arc = report.rejection.witness_arc;
  if (arc.valid) {
    line += ", witness arc ";
    line += ToString(txns, arc.from);
    line += " -> ";
    line += ToString(txns, arc.to);
    if (arc.arc_kinds != 0) {
      line += " [";
      line += TraceArcKindsToString(arc.arc_kinds);
      line += "]";
    }
  }
  std::printf("%s\n", line.c_str());
}

// Audits an in-memory history and handles reporting, minimization and
// witness export. Returns the process exit code.
int AuditAndReport(const TransactionSet& txns, const AtomicitySpec& spec,
                   const std::vector<Operation>& history,
                   const CliOptions& cli) {
  AuditOptions options;
  options.minimize = cli.minimize;
  options.use_soa = cli.checker == "soa";
  const AuditReport report = AuditHistory(txns, spec, history, options);

  if (report.accepted) {
    std::printf("audit: ACCEPT — %zu ops relatively serializable\n",
                report.ops_checked);
    return kExitAccept;
  }
  PrintRejection(txns, history, report);
  if (!cli.minimize) return kExitViolation;

  if (!report.minimized) {
    std::printf(
        "audit: minimization budget exhausted after %zu re-checks; "
        "witness not 1-minimal\n",
        report.ddmin_checks);
  }
  std::printf("audit: minimized witness (%zu of %zu ops, %zu txns, %zu "
              "re-checks): %s\n",
              report.witness_ops.size(), report.history_size,
              report.witness.txns.txn_count(), report.ddmin_checks,
              report.witness_text.c_str());
  if (cli.write_witness && report.minimized) {
    const std::string jsonl = cli.witness_out + ".jsonl";
    const std::string chrome = cli.witness_out + ".chrome.json";
    if (!ExportWitness(report, jsonl, chrome)) {
      std::fprintf(stderr, "audit: failed to write witness files\n");
      return kExitError;
    }
    std::printf("audit: wrote %s (auditable) and %s (Perfetto)\n",
                jsonl.c_str(), chrome.c_str());
  }
  return kExitViolation;
}

// -- File mode --------------------------------------------------------

int RunFile(const CliOptions& cli) {
  IngestOptions ingest;
  if (cli.format == "trace") {
    ingest.dialect = TraceDialect::kRelserTrace;
  } else if (cli.format == "generic") {
    ingest.dialect = TraceDialect::kGeneric;
  } else if (cli.format != "auto") {
    std::fprintf(stderr, "audit: bad --format %s\n", cli.format.c_str());
    return kExitError;
  }

  Result<AuditInput> input = IngestHistoryFile(cli.file, ingest);
  if (!input.ok()) {
    std::fprintf(stderr, "audit: %s: %s\n", cli.file.c_str(),
                 input.status().message().c_str());
    return kExitError;
  }
  AuditInput in = std::move(input).value();

  std::string spec_source = in.spec_from_header ? "header" : "absolute";
  if (!cli.spec.empty()) {
    if (cli.spec == "absolute") {
      in.spec = AtomicitySpec(in.txns);
      spec_source = "absolute (forced)";
    } else {
      std::ifstream spec_file(cli.spec);
      if (!spec_file) {
        std::fprintf(stderr, "audit: cannot open spec file %s\n",
                     cli.spec.c_str());
        return kExitError;
      }
      std::ostringstream text;
      text << spec_file.rdbuf();
      Result<AtomicitySpec> parsed = ParseAtomicitySpec(in.txns, text.str());
      if (!parsed.ok()) {
        std::fprintf(stderr, "audit: %s: %s\n", cli.spec.c_str(),
                     parsed.status().message().c_str());
        return kExitError;
      }
      in.spec = std::move(parsed).value();
      spec_source = cli.spec;
    }
  }

  const char* dialect =
      in.dialect == TraceDialect::kGeneric ? "generic" : "relser-trace";
  std::printf("audit: %s: %zu ops over %zu txns (%s, spec: %s)\n",
              cli.file.c_str(), in.history.size(), in.txns.txn_count(),
              dialect, spec_source.c_str());
  return AuditAndReport(in.txns, in.spec, in.history, cli);
}

// -- Demo mode --------------------------------------------------------

// Replays `ops` through a fully-traced checker and writes the
// versioned JSONL trace (txns + spec embedded). Returns false when any
// operation is rejected or the file cannot be written.
bool WriteCheckedTrace(const TransactionSet& txns, const AtomicitySpec& spec,
                       const std::vector<Operation>& ops,
                       const std::string& path) {
  Tracer tracer(TraceLevel::kFull);
  OnlineRsrChecker checker(txns, spec);
  checker.set_tracer(&tracer);
  std::vector<std::uint32_t> fed(txns.txn_count(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    tracer.SetTick(i);
    if (!checker.TryAppend(ops[i]).ok()) return false;
    tracer.RecordAdmit(ops[i], i, 0);
    if (++fed[ops[i].txn] == txns.txn(ops[i].txn).size()) {
      tracer.RecordCommit(ops[i].txn, i);
    }
  }
  return WriteTraceJsonl(tracer, txns, path, ToString(txns, spec));
}

// The docs/audit.md worked example: Figure 3's schedule S2 audits
// clean; flipping its final read r1[z] into a write w1[z] closes the
// conflict cycle T1 -> T2 -> T3 -> T1, and the auditor reduces the
// violation to the six-operation witness. Figure 1's S2 shows the
// other direction: accepted under its relative spec, rejected under
// absolute atomicity.
int RunDemo(const CliOptions& cli) {
  const std::string dir = cli.demo_dir;
  bool ok = true;

  // 1. Export Figure 3's S2 and audit the file round-trip.
  PaperExample fig3 = Figure3();
  const std::string fig3_path = dir + "/fig3_s2.jsonl";
  if (!WriteCheckedTrace(fig3.txns, fig3.spec, fig3.schedule("S2").ops(),
                         fig3_path)) {
    std::fprintf(stderr, "audit: demo: cannot write %s\n", fig3_path.c_str());
    return kExitError;
  }
  std::printf("demo: wrote %s (Figure 3, schedule S2, spec embedded)\n",
              fig3_path.c_str());
  {
    Result<AuditInput> in = IngestHistoryFile(fig3_path);
    if (!in.ok()) {
      std::fprintf(stderr, "audit: demo: %s\n",
                   in.status().message().c_str());
      return kExitError;
    }
    const AuditReport report =
        AuditHistory(in.value().txns, in.value().spec, in.value().history);
    std::printf("demo: audit %s -> %s\n", fig3_path.c_str(),
                report.accepted ? "ACCEPT" : "VIOLATION");
    ok = ok && report.accepted;
  }

  // 2. The mutated Figure 3 history, in the generic dialect: one
  //    flipped bit ("rw":"r" -> "w" on the last line) makes it
  //    unserializable, and absolute atomicity (the generic default)
  //    rejects it.
  const std::string mutated_path = dir + "/fig3_mutated.jsonl";
  {
    std::ofstream out(mutated_path);
    out << "{\"txn\": 1, \"op\": 0, \"object\": \"x\", \"rw\": \"w\"}\n"
        << "{\"txn\": 2, \"op\": 0, \"object\": \"x\", \"rw\": \"r\"}\n"
        << "{\"txn\": 3, \"op\": 0, \"object\": \"z\", \"rw\": \"r\"}\n"
        << "{\"txn\": 2, \"op\": 1, \"object\": \"y\", \"rw\": \"w\"}\n"
        << "{\"txn\": 3, \"op\": 1, \"object\": \"y\", \"rw\": \"r\"}\n"
        << "{\"txn\": 1, \"op\": 1, \"object\": \"z\", \"rw\": \"w\"}\n";
    if (!out) {
      std::fprintf(stderr, "audit: demo: cannot write %s\n",
                   mutated_path.c_str());
      return kExitError;
    }
  }
  std::printf("demo: wrote %s (Figure 3 with r1[z] flipped to w1[z])\n",
              mutated_path.c_str());
  {
    Result<AuditInput> in = IngestHistoryFile(mutated_path);
    if (!in.ok()) {
      std::fprintf(stderr, "audit: demo: %s\n",
                   in.status().message().c_str());
      return kExitError;
    }
    const AuditReport report =
        AuditHistory(in.value().txns, in.value().spec, in.value().history);
    std::printf("demo: audit %s -> %s\n", mutated_path.c_str(),
                report.accepted ? "ACCEPT" : "VIOLATION");
    ok = ok && !report.accepted && report.minimized;
    if (report.minimized) {
      std::printf("demo: minimized witness (%zu ops): %s\n",
                  report.witness_ops.size(), report.witness_text.c_str());
      const std::string jsonl = dir + "/fig3_witness.jsonl";
      const std::string chrome = dir + "/fig3_witness.chrome.json";
      ok = ExportWitness(report, jsonl, chrome) && ok;
      std::printf("demo: wrote %s and %s\n", jsonl.c_str(), chrome.c_str());
    }
  }

  // 3. Figure 1's S2: relatively serializable under the paper's spec,
  //    a violation under absolute atomicity — the relaxation at work.
  PaperExample fig1 = Figure1();
  {
    const std::vector<Operation>& ops = fig1.schedule("S2").ops();
    const AuditReport own = AuditHistory(fig1.txns, fig1.spec, ops);
    const AuditReport abs =
        AuditHistory(fig1.txns, AtomicitySpec(fig1.txns), ops);
    std::printf("demo: Figure 1 S2 under its relative spec -> %s\n",
                own.accepted ? "ACCEPT" : "VIOLATION");
    std::printf("demo: Figure 1 S2 under absolute atomicity -> %s\n",
                abs.accepted ? "ACCEPT" : "VIOLATION");
    ok = ok && own.accepted && !abs.accepted && abs.minimized;
    if (abs.minimized) {
      std::printf("demo: minimized witness (%zu ops): %s\n",
                  abs.witness_ops.size(), abs.witness_text.c_str());
      const std::string jsonl = dir + "/fig1_witness.jsonl";
      const std::string chrome = dir + "/fig1_witness.chrome.json";
      ok = ExportWitness(abs, jsonl, chrome) && ok;
      std::printf("demo: wrote %s and %s\n", jsonl.c_str(), chrome.c_str());

      // The witness trace embeds its own txns + spec: audit it back.
      Result<AuditInput> in = IngestHistoryFile(jsonl);
      if (in.ok()) {
        const AuditReport again =
            AuditHistory(in.value().txns, in.value().spec,
                         in.value().history);
        std::printf("demo: re-audit %s -> %s\n", jsonl.c_str(),
                    again.accepted ? "ACCEPT" : "VIOLATION (as expected)");
        ok = ok && !again.accepted;
      } else {
        std::fprintf(stderr, "audit: demo: %s\n",
                     in.status().message().c_str());
        ok = false;
      }
    }
  }

  std::printf("demo: %s\n", ok ? "all steps behaved as documented"
                               : "UNEXPECTED RESULT — see above");
  return ok ? kExitAccept : kExitError;
}

// -- Self-audit mode --------------------------------------------------

// Runs a client fleet through a ShardedAdmitter (the bench_sharded
// cell shape) and audits the merged committed log: the subsystem's
// output must itself pass the auditor it was built against.
int RunSelfAudit(const CliOptions& cli) {
  Rng rng(cli.seed);
  ShardedWorkloadParams wp;
  wp.txn_count = cli.txns;
  wp.min_ops_per_txn = 3;
  wp.max_ops_per_txn = 8;
  wp.shard_count = cli.shards;
  wp.objects_per_shard = 16;
  wp.cross_shard_ratio = cli.cross;
  wp.zipf_theta = 0.6;
  const TransactionSet txns = GenerateShardedTransactions(wp, &rng);
  const AtomicitySpec spec = RandomSpec(txns, cli.density, &rng);

  ShardedAdmitter admitter(
      txns, spec,
      ShardRouter(txns.object_count(), cli.shards, ShardStrategy::kRange));
  std::vector<std::thread> fleet;
  fleet.reserve(cli.clients);
  for (std::size_t c = 0; c < cli.clients; ++c) {
    fleet.emplace_back([&, c] {
      Backoff backoff(cli.seed ^ (0x5A4D0000ULL + c));
      for (TxnId t = static_cast<TxnId>(c); t < txns.txn_count();
           t = static_cast<TxnId>(t + cli.clients)) {
        for (std::uint32_t i = 0; i < txns.txn(t).size(); ++i) {
          if (!admitter.SubmitWithBackoff(txns.txn(t).op(i), backoff).ok()) {
            break;  // rejected or cascade-aborted
          }
        }
        backoff.Reset();
      }
    });
  }
  for (std::thread& client : fleet) client.join();
  admitter.Stop();

  const std::vector<Operation> committed = admitter.CommittedLog();
  std::printf("self-audit: %zu txns over %zu shards, %zu clients -> %zu "
              "committed ops\n",
              txns.txn_count(), cli.shards, cli.clients, committed.size());
  const int code = AuditAndReport(txns, spec, committed, cli);
  if (code != kExitAccept) {
    std::fprintf(stderr,
                 "self-audit: committed log is NOT relatively "
                 "serializable — admission soundness bug\n");
  }
  return code;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();
  if (cli.demo) return RunDemo(cli);
  if (cli.self_audit) return RunSelfAudit(cli);
  return RunFile(cli);
}

}  // namespace
}  // namespace relser

int main(int argc, char** argv) { return relser::Main(argc, argv); }
