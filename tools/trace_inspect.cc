// trace_inspect: analyze (and produce) relser JSONL traces.
//
// Usage:
//   trace_inspect <trace.jsonl>
//       Print the summary report: top blocking arcs, longest-delayed
//       operations, per-transaction wait breakdown.
//   trace_inspect --check <trace.jsonl>
//       Validate the file against the normative versioned schema
//       (docs/trace-format.md) — the same validator tools/audit and
//       the CI smoke use; exit non-zero on any violation.
//   trace_inspect --demo <scheduler> <out.jsonl> [out.chrome.json]
//       Replay a paper schedule through the named scheduler
//       (sched/factory.h names) with full tracing and write the JSONL
//       trace (and optionally a Chrome trace_event file for
//       chrome://tracing / Perfetto). Schedulers that block ("ra", the
//       2PL family) replay Figure 3's S2, whose open atomic unit delays
//       r2[x] behind the F-arc r1[z] -> r2[x]; the certification
//       schedulers replay Figure 1's S2.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "relser.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: trace_inspect <trace.jsonl>\n"
               "       trace_inspect --check <trace.jsonl>\n"
               "       trace_inspect --demo <scheduler> <out.jsonl> "
               "[out.chrome.json]\n");
  return 2;
}

int RunSummary(const std::string& path) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "trace_inspect: cannot read %s\n", path.c_str());
    return 1;
  }
  const relser::TraceSummary summary =
      relser::SummarizeTraceJsonl(content);
  std::fputs(relser::RenderTraceSummary(summary).c_str(), stdout);
  return 0;
}

int RunCheck(const std::string& path) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "trace_inspect: cannot read %s\n", path.c_str());
    return 1;
  }
  const relser::TraceValidation validation =
      relser::ValidateTraceJsonl(content);
  if (validation.ok) {
    std::printf("%zu events OK\n", validation.lines);
    return 0;
  }
  for (const std::string& error : validation.errors) {
    std::fprintf(stderr, "%s\n", error.c_str());
  }
  return 1;
}

int RunDemo(const std::string& scheduler_name, const std::string& jsonl_path,
            const std::string& chrome_path) {
  // Blocking schedulers show genuine delays on Figure 3's S2 (T1's
  // open unit [w1[x] r1[z]] relative to T2 delays r2[x]); the
  // certification schedulers decide Figure 1's S2 outright.
  const bool blocking = scheduler_name == "ra" || scheduler_name == "2pl" ||
                        scheduler_name == "unit2pl" ||
                        scheduler_name == "altruistic";
  const relser::PaperExample example =
      blocking ? relser::Figure3() : relser::Figure1();
  const relser::Schedule& schedule = example.schedule("S2");

  const auto scheduler =
      relser::MakeScheduler(scheduler_name, example.txns, example.spec);
  if (scheduler == nullptr) {
    std::fprintf(stderr, "trace_inspect: unknown scheduler %s\n",
                 scheduler_name.c_str());
    return 1;
  }

  relser::Tracer tracer(relser::TraceLevel::kFull);
  const relser::ReplayResult result = relser::ReplaySchedule(
      example.txns, scheduler.get(), schedule, &tracer);
  std::printf("%s S2 under %s: %zu granted, %zu delays, %zu aborts over "
              "%zu rounds\n",
              example.name.c_str(), scheduler_name.c_str(), result.granted,
              result.delays, result.aborted_txns, result.rounds);

  if (!relser::WriteTraceJsonl(tracer, example.txns, jsonl_path,
                               relser::ToString(example.txns, example.spec))) {
    std::fprintf(stderr, "trace_inspect: cannot write %s\n",
                 jsonl_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", jsonl_path.c_str(),
              tracer.events().size());
  if (!chrome_path.empty()) {
    if (!relser::WriteChromeTrace(tracer, example.txns, chrome_path)) {
      std::fprintf(stderr, "trace_inspect: cannot write %s\n",
                   chrome_path.c_str());
      return 1;
    }
    std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                chrome_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  if (mode == "--check") {
    if (argc != 3) return Usage();
    return RunCheck(argv[2]);
  }
  if (mode == "--demo") {
    if (argc != 4 && argc != 5) return Usage();
    return RunDemo(argv[2], argv[3], argc == 5 ? argv[4] : "");
  }
  if (argc != 2 || mode.rfind("--", 0) == 0) return Usage();
  return RunSummary(mode);
}
